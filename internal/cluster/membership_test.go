package cluster

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/neurosym/nsbench/internal/membership"
)

// postCluster sends one join/leave announcement to the router handler.
func postCluster(h http.Handler, path, nodeURL string) *httptest.ResponseRecorder {
	req := httptest.NewRequest(http.MethodPost, path, strings.NewReader(`{"url":"`+nodeURL+`"}`))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

// recorderHasSpan reports whether the router recorded a span with name
// under the reserved trace id.
func recorderHasSpan(rt *Router, id, name string) bool {
	for _, rs := range rt.recorder.SpansByID(id) {
		if rs.Span.Name == name {
			return true
		}
	}
	return false
}

// TestClusterDynamicJoin is the membership end-to-end: a replica joins a
// running router over HTTP, is admitted to the ring only through the
// health checker's probation/readmit gate, serves traffic, and leaves
// cleanly.
func TestClusterDynamicJoin(t *testing.T) {
	testWorkloads()
	static := startReplica(t)
	joiner := startReplica(t)

	rt := newTestRouter(t, Config{
		Replicas:       []string{static.hs.URL},
		Membership:     membership.Config{Enabled: true},
		Health:         fastHealth(),
		RetryBaseDelay: time.Millisecond,
	})
	h := rt.Handler()

	if rec := postCluster(h, "/v1/cluster/join", joiner.hs.URL); rec.Code != http.StatusOK {
		t.Fatalf("join: %d %s", rec.Code, rec.Body)
	}
	if !rt.member.Contains(joiner.hs.URL) {
		t.Fatal("joiner not registered as a member")
	}
	await(t, "joiner admitted to the ring", func() bool { return rt.ring.Contains(joiner.hs.URL) })

	// Admission must have gone through the checker's readmit path, not a
	// direct ring edit: both the membership join and the health readmit
	// left spans under their reserved trace IDs.
	if !recorderHasSpan(rt, membershipTraceID, "membership.join("+joiner.hs.URL+")") {
		t.Fatal("no membership.join span recorded")
	}
	if !recorderHasSpan(rt, healthTraceID, "health.readmit("+joiner.hs.URL+")") {
		t.Fatal("no health.readmit span — join bypassed the probation gate")
	}

	// The joiner owns keys now; a request for one routes to it.
	body, _ := keyOwnedBy(t, rt, joiner.hs.URL)
	rec := routerPost(h, body)
	if rec.Code != http.StatusOK {
		t.Fatalf("characterize via joiner: %d %s", rec.Code, rec.Body)
	}
	if got := rec.Header().Get("X-NSRouter-Node"); got != joiner.hs.URL {
		t.Fatalf("served by %s, want joiner %s", got, joiner.hs.URL)
	}

	// Explicit leave withdraws it from checker and ring immediately.
	if rec := postCluster(h, "/v1/cluster/leave", joiner.hs.URL); rec.Code != http.StatusOK {
		t.Fatalf("leave: %d %s", rec.Code, rec.Body)
	}
	if rt.ring.Contains(joiner.hs.URL) || rt.member.Contains(joiner.hs.URL) {
		t.Fatal("joiner still present after leave")
	}
	if joins, leaves := rt.member.Counts(); joins != 1 || leaves != 1 {
		t.Fatalf("counts = %d/%d, want 1 join / 1 leave", joins, leaves)
	}
	if !recorderHasSpan(rt, membershipTraceID, "membership.leave("+joiner.hs.URL+" leave)") {
		t.Fatal("no membership.leave span recorded")
	}

	// The metrics surface carries the counters and the gauge.
	mrec := httptest.NewRecorder()
	h.ServeHTTP(mrec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	for _, want := range []string{"ns_cluster_members", "ns_cluster_joins_total 1", "ns_cluster_leaves_total 1"} {
		if !strings.Contains(mrec.Body.String(), want) {
			t.Fatalf("/metrics missing %q", want)
		}
	}
}

// TestClusterJoinTTLExpiry: a joined replica that stops heartbeating is
// swept out of membership, checker, and ring.
func TestClusterJoinTTLExpiry(t *testing.T) {
	testWorkloads()
	static := startReplica(t)
	joiner := startReplica(t)

	rt := newTestRouter(t, Config{
		Replicas:   []string{static.hs.URL},
		Membership: membership.Config{Enabled: true, TTL: 50 * time.Millisecond, SweepInterval: 10 * time.Millisecond},
		Health:     fastHealth(),
	})
	h := rt.Handler()
	postCluster(h, "/v1/cluster/join", joiner.hs.URL)
	await(t, "joiner admitted", func() bool { return rt.ring.Contains(joiner.hs.URL) })

	// No heartbeats: the TTL sweeper expires it.
	await(t, "joiner expired", func() bool { return !rt.ring.Contains(joiner.hs.URL) })
	if rt.member.Contains(joiner.hs.URL) {
		t.Fatal("expired joiner still a member")
	}
	dep := rt.member.Departed()
	if len(dep) != 1 || dep[0].Reason != membership.ReasonExpired {
		t.Fatalf("departed ledger = %+v, want one expiry", dep)
	}
	// The static replica is untouched by the sweeper.
	if !rt.ring.Contains(static.hs.URL) {
		t.Fatal("static replica lost during expiry sweep")
	}
}

// TestClusterMembershipDisabled: with static configuration the cluster
// endpoints are read-only — join/leave answer 403 and mutate nothing.
func TestClusterMembershipDisabled(t *testing.T) {
	up := stubReplica(t, func(w http.ResponseWriter, r *http.Request) {})
	rt := newTestRouter(t, Config{Replicas: []string{up.URL}, Health: fastHealth()})
	h := rt.Handler()

	if rec := postCluster(h, "/v1/cluster/join", "http://sneaky:1"); rec.Code != http.StatusForbidden {
		t.Fatalf("join with membership disabled: %d, want 403", rec.Code)
	}
	if rec := postCluster(h, "/v1/cluster/leave", up.URL); rec.Code != http.StatusForbidden {
		t.Fatalf("leave with membership disabled: %d, want 403", rec.Code)
	}
	if !rt.ring.Contains(up.URL) || rt.member.Len() != 1 {
		t.Fatal("static membership mutated through disabled endpoints")
	}
	// The members listing stays readable for operators.
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/cluster/members", nil))
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), `"enabled":false`) {
		t.Fatalf("members listing: %d %s", rec.Code, rec.Body)
	}
}

// TestStatsToleratesMidFanoutDeparture: a replica that leaves the cluster
// between the stats fan-out and its answer is reported under
// departed_nodes, not as an error row.
func TestStatsToleratesMidFanoutDeparture(t *testing.T) {
	testWorkloads()
	static := startReplica(t)

	var rt *Router
	// The leaver's stats endpoint withdraws the node and then breaks the
	// connection — deterministically reproducing "left mid-fan-out".
	mux := http.NewServeMux()
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) { w.WriteHeader(http.StatusOK) })
	leaver := httptest.NewServer(mux)
	defer leaver.Close()
	mux.HandleFunc("/v1/stats", func(w http.ResponseWriter, r *http.Request) {
		rt.member.Leave(leaver.URL, membership.ReasonLeave)
		conn, _, err := w.(http.Hijacker).Hijack()
		if err == nil {
			conn.Close()
		}
	})

	rt = newTestRouter(t, Config{
		Replicas:       []string{static.hs.URL},
		Membership:     membership.Config{Enabled: true},
		Health:         fastHealth(),
		RetryBaseDelay: time.Millisecond,
	})
	h := rt.Handler()
	postCluster(h, "/v1/cluster/join", leaver.URL)
	await(t, "leaver admitted", func() bool { return rt.ring.Contains(leaver.URL) })

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/stats", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("/v1/stats: %d %s", rec.Code, rec.Body)
	}
	body := rec.Body.String()
	if !strings.Contains(body, `"departed_nodes":["`+leaver.URL+`"]`) {
		t.Fatalf("mid-fan-out leaver not under departed_nodes:\n%s", body)
	}
	if strings.Contains(body, `"error"`) {
		t.Fatalf("mid-fan-out leaver still surfaced as an error row:\n%s", body)
	}
	if !strings.Contains(body, `"node":"`+static.hs.URL+`"`) {
		t.Fatalf("surviving replica missing from stats rows:\n%s", body)
	}
}
