package cluster

import (
	"hash/fnv"
	"sort"
	"strconv"
	"sync"
)

// DefaultVirtualNodes is the number of points each node contributes to
// the ring. 128 keeps per-node load imbalance in the low tens of percent
// (the standard deviation of ownership shrinks ~1/sqrt(vnodes)) while a
// membership change still costs only a few microseconds of re-sorting.
const DefaultVirtualNodes = 128

// Ring is a consistent-hash ring with virtual nodes. Keys and nodes are
// hashed onto the same 64-bit circle; a key is owned by the first node
// point at or clockwise after the key's hash. Two properties matter to
// the serving tier built on top:
//
//   - Minimal movement: adding or removing one of N nodes remaps only
//     the keys whose owning point changed — about K/N of K keys, never a
//     full reshuffle. Each replica's report cache therefore survives
//     membership churn mostly intact (ring_test.go property-tests the
//     ≤ c·K/N bound with testing/quick).
//   - Restart determinism: the hash is seed-independent FNV-1a and ties
//     are broken lexicographically, so the same membership always yields
//     the same assignment, in any insertion order, in any process. A
//     restarted router keeps routing every key to the replica that
//     already cached it.
//
// All methods are safe for concurrent use; lookups take a read lock.
type Ring struct {
	vnodes int

	mu     sync.RWMutex
	member map[string]bool
	points []point // sorted by (hash, node)
}

// point is one virtual node: a position on the circle owned by a node.
type point struct {
	hash uint64
	node string
}

// NewRing returns an empty ring; vnodes ≤ 0 selects DefaultVirtualNodes.
func NewRing(vnodes int) *Ring {
	if vnodes < 1 {
		vnodes = DefaultVirtualNodes
	}
	return &Ring{vnodes: vnodes, member: make(map[string]bool)}
}

// hashString is 64-bit FNV-1a. It is deliberately not maphash or any
// seeded hash: assignment must be identical across process restarts and
// across the router fleet, or every restart would orphan the replicas'
// caches.
func hashString(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}

// Add inserts node's virtual points. Adding a present node is a no-op.
func (r *Ring) Add(node string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.member[node] {
		return
	}
	r.member[node] = true
	for i := 0; i < r.vnodes; i++ {
		r.points = append(r.points, point{hashString(node + "\x00#" + strconv.Itoa(i)), node})
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Hash ties between different nodes' points are broken by name so
		// the ring order never depends on insertion order.
		return r.points[i].node < r.points[j].node
	})
}

// Remove deletes node's virtual points. Removing an absent node is a
// no-op.
func (r *Ring) Remove(node string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.member[node] {
		return
	}
	delete(r.member, node)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.node != node {
			kept = append(kept, p)
		}
	}
	r.points = kept
}

// Contains reports whether node is currently a ring member.
func (r *Ring) Contains(node string) bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.member[node]
}

// Len reports the number of member nodes.
func (r *Ring) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.member)
}

// Nodes returns the member nodes, sorted.
func (r *Ring) Nodes() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.member))
	for n := range r.member {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Get returns the node owning key, or false on an empty ring.
func (r *Ring) Get(key string) (string, bool) {
	nodes := r.GetN(key, 1)
	if len(nodes) == 0 {
		return "", false
	}
	return nodes[0], true
}

// GetN returns up to n distinct nodes for key in failover order: the
// owner first, then each next distinct node clockwise. Retries and
// hedges walk this list, so a key's traffic concentrates on as few
// replicas as availability allows.
func (r *Ring) GetN(key string, n int) []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.points) == 0 || n < 1 {
		return nil
	}
	if n > len(r.member) {
		n = len(r.member)
	}
	h := hashString(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	out := make([]string, 0, n)
	seen := make(map[string]bool, n)
	for i := 0; i < len(r.points) && len(out) < n; i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.node] {
			seen[p.node] = true
			out = append(out, p.node)
		}
	}
	return out
}
