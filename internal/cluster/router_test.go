package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"github.com/neurosym/nsbench/internal/core"
	"github.com/neurosym/nsbench/internal/hwsim"
	"github.com/neurosym/nsbench/internal/serve"
)

// stubReplica is a scripted nsserve stand-in: always ready, with a
// configurable characterize handler.
func stubReplica(t *testing.T, characterize http.HandlerFunc) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) { w.WriteHeader(http.StatusOK) })
	mux.HandleFunc("/v1/characterize", characterize)
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv
}

// fastHealth keeps test ejection latencies in the millisecond range.
func fastHealth() HealthConfig {
	return HealthConfig{Interval: 10 * time.Millisecond, Timeout: time.Second, EjectAfter: 2, ReadmitAfter: 2}
}

func newTestRouter(t *testing.T, cfg Config) *Router {
	t.Helper()
	rt, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	return rt
}

// keyOwnedBy finds a valid characterize request whose canonical key the
// ring assigns to node (workloads × devices gives dozens of candidates).
func keyOwnedBy(t *testing.T, rt *Router, node string) (body, key string) {
	t.Helper()
	for _, wl := range core.WorkloadNames() {
		for _, dev := range hwsim.AllDevices() {
			_, k, err := serve.Canonicalize(serve.Request{Workload: wl, Device: dev.Name})
			if err != nil {
				t.Fatal(err)
			}
			if owner, _ := rt.ring.Get(k); owner == node {
				return fmt.Sprintf(`{"workload":%q,"device":%q}`, wl, dev.Name), k
			}
		}
	}
	t.Fatalf("no canonical key owned by %s", node)
	return "", ""
}

func routerPost(h http.Handler, body string) *httptest.ResponseRecorder {
	req := httptest.NewRequest(http.MethodPost, "/v1/characterize", strings.NewReader(body))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

func TestRouterFailsOverToNextNode(t *testing.T) {
	// Replica A always answers 503; B answers with a marker payload.
	down := stubReplica(t, func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "unavailable", http.StatusServiceUnavailable)
	})
	up := stubReplica(t, func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, `{"served_by":"B"}`)
	})
	rt := newTestRouter(t, Config{
		Replicas:       []string{down.URL, up.URL},
		Health:         fastHealth(),
		RetryBaseDelay: time.Millisecond,
	})
	h := rt.Handler()

	body, _ := keyOwnedBy(t, rt, down.URL)
	rec := routerPost(h, body)
	if rec.Code != http.StatusOK {
		t.Fatalf("failover request: %d %s", rec.Code, rec.Body)
	}
	if got := rec.Header().Get("X-NSRouter-Node"); got != up.URL {
		t.Fatalf("served by %s, want failover to %s", got, up.URL)
	}
	if !strings.Contains(rec.Body.String(), "served_by") {
		t.Fatalf("body %s lost in proxying", rec.Body)
	}
	if rt.retries.Value() == 0 {
		t.Fatal("failover did not count a retry")
	}
}

// TestRouterAllAttemptsFail: a replica that is ready (probes pass) but
// whose serving path breaks at the transport yields 502 — every node was
// tried, none answered.
func TestRouterAllAttemptsFail(t *testing.T) {
	broken := stubReplica(t, func(w http.ResponseWriter, r *http.Request) {
		conn, _, err := w.(http.Hijacker).Hijack()
		if err == nil {
			conn.Close() // client sees an abrupt transport error
		}
	})
	rt := newTestRouter(t, Config{
		Replicas:       []string{broken.URL},
		Health:         HealthConfig{Interval: time.Hour, EjectAfter: 100}, // stays in the ring
		RetryBaseDelay: time.Millisecond,
	})
	rec := routerPost(rt.Handler(), `{"workload":"LNN"}`)
	if rec.Code != http.StatusBadGateway {
		t.Fatalf("broken transport: %d, want 502", rec.Code)
	}
}

// TestRouterEmptyRing: once every replica is ejected the router answers
// 503 (try again later) and reports itself not-ready.
func TestRouterEmptyRing(t *testing.T) {
	dead := stubReplica(t, func(w http.ResponseWriter, r *http.Request) {})
	dead.Close() // connection refused from the start
	rt := newTestRouter(t, Config{
		Replicas:       []string{dead.URL},
		Health:         fastHealth(),
		RetryBaseDelay: time.Millisecond,
	})
	h := rt.Handler()

	deadline := time.Now().Add(5 * time.Second)
	for rt.ring.Len() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("dead replica never ejected")
		}
		time.Sleep(2 * time.Millisecond)
	}
	rec := routerPost(h, `{"workload":"LNN"}`)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("empty ring: %d, want 503", rec.Code)
	}
	req := httptest.NewRequest(http.MethodGet, "/readyz", nil)
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, req)
	if rr.Code != http.StatusServiceUnavailable {
		t.Fatalf("router /readyz with empty ring: %d, want 503", rr.Code)
	}
}

// TestRouterClientCancelAnswers499: a client that disconnects mid-route
// gets nginx's 499, not a 5xx — nobody reads the response, so it must
// not count against the availability error budget.
func TestRouterClientCancelAnswers499(t *testing.T) {
	inFlight := make(chan struct{}, 1)
	release := make(chan struct{})
	slow := stubReplica(t, func(w http.ResponseWriter, r *http.Request) {
		inFlight <- struct{}{}
		// Hold the attempt open until the router abandons it. The test
		// closes release (not the handler ctx): a handler that never reads
		// the POST body may not observe the disconnect, which would wedge
		// the stub server's Close in cleanup.
		select {
		case <-r.Context().Done():
		case <-release:
		}
	})
	t.Cleanup(func() { close(release) }) // after stubReplica's: runs before srv.Close
	rt := newTestRouter(t, Config{
		Replicas:       []string{slow.URL},
		Health:         HealthConfig{Interval: time.Hour, EjectAfter: 100},
		RetryBaseDelay: time.Millisecond,
	})
	h := rt.Handler()

	ctx, cancel := context.WithCancel(context.Background())
	req := httptest.NewRequest(http.MethodPost, "/v1/characterize",
		strings.NewReader(`{"workload":"LNN"}`)).WithContext(ctx)
	rec := httptest.NewRecorder()
	done := make(chan struct{})
	go func() {
		h.ServeHTTP(rec, req)
		close(done)
	}()
	<-inFlight // the upstream attempt is running
	cancel()   // client walks away
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("canceled route never returned")
	}
	if rec.Code != statusClientClosedRequest {
		t.Fatalf("client-canceled route answered %d, want 499", rec.Code)
	}
	if good, total := rt.sloGood.Value(), rt.sloTotal.Value(); good != total {
		t.Fatalf("availability feed good/total = %d/%d after a client cancel, want equal", good, total)
	}
}

func TestRouterPropagatesBadRequestWithoutForwarding(t *testing.T) {
	var hits atomic.Int32
	replica := stubReplica(t, func(w http.ResponseWriter, r *http.Request) { hits.Add(1) })
	rt := newTestRouter(t, Config{Replicas: []string{replica.URL}, Health: fastHealth()})
	h := rt.Handler()
	for _, body := range []string{`{`, `{}`, `{"workload":"no-such"}`} {
		if rec := routerPost(h, body); rec.Code != http.StatusBadRequest {
			t.Errorf("body %s: %d, want 400", body, rec.Code)
		}
	}
	if n := hits.Load(); n != 0 {
		t.Fatalf("invalid requests reached a replica %d times", n)
	}
	req := httptest.NewRequest(http.MethodGet, "/v1/characterize", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusMethodNotAllowed || rec.Header().Get("Allow") == "" {
		t.Fatalf("GET characterize: %d Allow=%q, want 405 with Allow", rec.Code, rec.Header().Get("Allow"))
	}
}

// TestRouterHedging: the key's owner stalls, the hedge fires to the next
// ring node after the latency-quantile delay, wins, and the stalled
// primary attempt is cancelled through its request context.
func TestRouterHedging(t *testing.T) {
	primaryCancelled := make(chan struct{}, 1)
	slow := stubReplica(t, func(w http.ResponseWriter, r *http.Request) {
		// Drain the body so the server's background read can detect the
		// client abort and cancel the request context.
		io.Copy(io.Discard, r.Body)
		select {
		case <-r.Context().Done():
			primaryCancelled <- struct{}{}
		case <-time.After(10 * time.Second):
		}
	})
	fast := stubReplica(t, func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, `{"served_by":"hedge"}`)
	})
	rt := newTestRouter(t, Config{
		Replicas:      []string{slow.URL, fast.URL},
		Health:        fastHealth(),
		Hedge:         true,
		HedgeMinDelay: 5 * time.Millisecond,
	})
	h := rt.Handler()

	body, _ := keyOwnedBy(t, rt, slow.URL)
	start := time.Now()
	rec := routerPost(h, body)
	if rec.Code != http.StatusOK {
		t.Fatalf("hedged request: %d %s", rec.Code, rec.Body)
	}
	if got := rec.Header().Get("X-NSRouter-Node"); got != fast.URL {
		t.Fatalf("served by %s, want hedge winner %s", got, fast.URL)
	}
	if dur := time.Since(start); dur > 5*time.Second {
		t.Fatalf("hedged request took %v — primary's stall leaked into the response", dur)
	}
	if rt.hedgeFired.Value() != 1 || rt.hedgeWon.Value() != 1 {
		t.Fatalf("hedge counters fired=%d won=%d, want 1/1", rt.hedgeFired.Value(), rt.hedgeWon.Value())
	}
	select {
	case <-primaryCancelled:
	case <-time.After(5 * time.Second):
		t.Fatal("losing primary attempt was never cancelled")
	}
}

// TestRouterHedgeNotFiredOnFastPrimary: a primary that answers inside
// the hedge delay never spawns duplicate work.
func TestRouterHedgeNotFiredOnFastPrimary(t *testing.T) {
	a := stubReplica(t, func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, `{"ok":true}`)
	})
	b := stubReplica(t, func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, `{"ok":true}`)
	})
	rt := newTestRouter(t, Config{
		Replicas:      []string{a.URL, b.URL},
		Health:        fastHealth(),
		Hedge:         true,
		HedgeMinDelay: 2 * time.Second,
	})
	h := rt.Handler()
	for i := 0; i < 5; i++ {
		body, _ := keyOwnedBy(t, rt, a.URL)
		if rec := routerPost(h, body); rec.Code != http.StatusOK {
			t.Fatalf("request %d: %d", i, rec.Code)
		}
	}
	if fired := rt.hedgeFired.Value(); fired != 0 {
		t.Fatalf("hedges fired on fast primary: %d", fired)
	}
}

// TestRouterRequestIDPropagation: an inbound X-Request-ID reaches the
// replica (where it scopes flight-recorder entries) and is echoed back.
func TestRouterRequestIDPropagation(t *testing.T) {
	seen := make(chan string, 1)
	replica := stubReplica(t, func(w http.ResponseWriter, r *http.Request) {
		seen <- r.Header.Get("X-Request-ID")
		fmt.Fprint(w, `{}`)
	})
	rt := newTestRouter(t, Config{Replicas: []string{replica.URL}, Health: fastHealth()})
	h := rt.Handler()

	req := httptest.NewRequest(http.MethodPost, "/v1/characterize", strings.NewReader(`{"workload":"LNN"}`))
	req.Header.Set("X-Request-ID", "trace-me-42")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("request: %d", rec.Code)
	}
	if got := <-seen; got != "trace-me-42" {
		t.Fatalf("replica saw X-Request-ID %q, want trace-me-42", got)
	}
	if got := rec.Header().Get("X-Request-ID"); got != "trace-me-42" {
		t.Fatalf("response echoed X-Request-ID %q, want trace-me-42", got)
	}

	// Without an inbound ID the router mints one and still propagates it.
	rec = routerPost(h, `{"workload":"LNN"}`)
	minted := <-seen
	if minted == "" || rec.Header().Get("X-Request-ID") != minted {
		t.Fatalf("minted ID %q vs echoed %q", minted, rec.Header().Get("X-Request-ID"))
	}
}

// TestRouterAggregatedStats sums replica snapshots and carries per-node
// detail plus ejection state.
func TestRouterAggregatedStats(t *testing.T) {
	mkStats := func(requests, runs, runNanos, cacheSize int64) http.HandlerFunc {
		return func(w http.ResponseWriter, r *http.Request) {
			json.NewEncoder(w).Encode(serve.Snapshot{
				Requests: requests, Runs: runs, RunNanos: runNanos, CacheSize: int(cacheSize),
			})
		}
	}
	mux1 := http.NewServeMux()
	mux1.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {})
	mux1.HandleFunc("/v1/stats", mkStats(10, 4, 4e9, 3))
	r1 := httptest.NewServer(mux1)
	defer r1.Close()
	mux2 := http.NewServeMux()
	mux2.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {})
	mux2.HandleFunc("/v1/stats", mkStats(6, 2, 2e9, 1))
	r2 := httptest.NewServer(mux2)
	defer r2.Close()

	rt := newTestRouter(t, Config{Replicas: []string{r1.URL, r2.URL}, Health: fastHealth()})
	req := httptest.NewRequest(http.MethodGet, "/v1/stats", nil)
	rec := httptest.NewRecorder()
	rt.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("stats: %d %s", rec.Code, rec.Body)
	}
	var agg ClusterStats
	if err := json.Unmarshal(rec.Body.Bytes(), &agg); err != nil {
		t.Fatal(err)
	}
	if agg.LiveNodes != 2 || len(agg.Nodes) != 2 {
		t.Fatalf("live=%d nodes=%d, want 2/2", agg.LiveNodes, len(agg.Nodes))
	}
	if agg.Cluster.Requests != 16 || agg.Cluster.Runs != 6 || agg.Cluster.CacheSize != 4 {
		t.Fatalf("cluster sums %+v, want requests 16 / runs 6 / cache 4", agg.Cluster)
	}
	if agg.Cluster.AvgRunNanos != 1e9 {
		t.Fatalf("cluster avg = %d, want 1e9 (recomputed from sums)", agg.Cluster.AvgRunNanos)
	}
	for _, ns := range agg.Nodes {
		if ns.Err != "" {
			t.Fatalf("node %s errored: %s", ns.Node, ns.Err)
		}
	}
}
