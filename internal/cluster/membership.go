package cluster

import (
	"encoding/json"
	"io"
	"net/http"

	"github.com/neurosym/nsbench/internal/membership"
)

// Dynamic membership endpoints. A replica POSTs /v1/cluster/join on
// startup and keeps POSTing it as its heartbeat; /v1/cluster/leave
// withdraws it on drain. /v1/cluster/members is the operator's view of
// the table. All three answer 403 when Config.Membership.Enabled is off —
// a statically configured cluster must not be mutable over HTTP.

// joinResponse answers a join/heartbeat or leave POST.
type joinResponse struct {
	Node string `json:"node"`
	// Changed reports whether this call changed membership (a first join
	// or an effective leave) as opposed to refreshing a heartbeat or
	// removing an unknown node.
	Changed bool `json:"changed"`
	Members int  `json:"members"`
}

// memberView is one row of the GET /v1/cluster/members listing.
type memberView struct {
	Node   string `json:"node"`
	Static bool   `json:"static"`
	// State is "live" (in the ring) or "probation" (known, but not yet —
	// or no longer — passing readiness probes).
	State string `json:"state"`
	// Inflight is the router's concurrent upstream attempts to this node.
	Inflight int64 `json:"inflight"`
	// MeanAttemptSeconds is the observed mean successful-attempt latency;
	// 0 until traffic lands.
	MeanAttemptSeconds float64 `json:"mean_attempt_seconds"`
}

// membersResponse is the GET /v1/cluster/members payload.
type membersResponse struct {
	Enabled  bool                   `json:"enabled"`
	Members  []memberView           `json:"members"`
	Departed []membership.Departure `json:"departed"`
	Joins    uint64                 `json:"joins_total"`
	Leaves   uint64                 `json:"leaves_total"`
}

// decodeAnnouncement parses and canonicalizes one join/leave body.
func decodeAnnouncement(w http.ResponseWriter, r *http.Request) (string, bool) {
	raw, err := io.ReadAll(io.LimitReader(r.Body, maxBodyBytes))
	if err != nil {
		http.Error(w, "reading body: "+err.Error(), http.StatusBadRequest)
		return "", false
	}
	var ann membership.Announcement
	if err := json.Unmarshal(raw, &ann); err != nil {
		http.Error(w, "bad announcement: "+err.Error(), http.StatusBadRequest)
		return "", false
	}
	node, err := membership.NormalizeNode(ann.URL)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return "", false
	}
	return node, true
}

// membershipEnabled gates the cluster endpoints on Config.Membership.
func (rt *Router) membershipEnabled(w http.ResponseWriter) bool {
	if !rt.cfg.Membership.Enabled {
		http.Error(w, "dynamic membership disabled (static -replicas cluster)", http.StatusForbidden)
		return false
	}
	return true
}

// handleClusterJoin registers a replica or refreshes its heartbeat.
func (rt *Router) handleClusterJoin(w http.ResponseWriter, r *http.Request) {
	if !allowMethods(w, r, http.MethodPost) {
		return
	}
	if !rt.membershipEnabled(w) {
		return
	}
	node, ok := decodeAnnouncement(w, r)
	if !ok {
		return
	}
	added := rt.member.Join(node)
	writeClusterJSON(w, joinResponse{Node: node, Changed: added, Members: rt.member.Len()})
}

// handleClusterLeave withdraws a replica immediately (graceful drain).
func (rt *Router) handleClusterLeave(w http.ResponseWriter, r *http.Request) {
	if !allowMethods(w, r, http.MethodPost) {
		return
	}
	if !rt.membershipEnabled(w) {
		return
	}
	node, ok := decodeAnnouncement(w, r)
	if !ok {
		return
	}
	removed := rt.member.Leave(node, membership.ReasonLeave)
	writeClusterJSON(w, joinResponse{Node: node, Changed: removed, Members: rt.member.Len()})
}

// handleClusterMembers lists the membership table with each node's
// routing state and load signals, plus the recent-departure ledger.
func (rt *Router) handleClusterMembers(w http.ResponseWriter, r *http.Request) {
	if !allowMethods(w, r, http.MethodGet) {
		return
	}
	joins, leaves := rt.member.Counts()
	out := membersResponse{
		Enabled:  rt.cfg.Membership.Enabled,
		Members:  []memberView{},
		Departed: rt.member.Departed(),
		Joins:    joins,
		Leaves:   leaves,
	}
	if out.Departed == nil {
		out.Departed = []membership.Departure{}
	}
	for _, m := range rt.member.Members() {
		mv := memberView{Node: m.Node, Static: m.Static, State: "probation"}
		if rt.ring.Contains(m.Node) {
			mv.State = "live"
		}
		mv.Inflight = rt.inflightCounter(m.Node).Load()
		if h := rt.nodeLat.With(m.Node); h.Count() > 0 {
			mv.MeanAttemptSeconds = h.Sum() / float64(h.Count())
		}
		out.Members = append(out.Members, mv)
	}
	writeClusterJSON(w, out)
}

// writeClusterJSON marshals v as the response body.
func writeClusterJSON(w http.ResponseWriter, v any) {
	b, err := json.Marshal(v)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(b)
}
