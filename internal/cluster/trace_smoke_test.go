package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"github.com/neurosym/nsbench/internal/trace"
)

// TestTraceSmoke exercises stitched tracing through the real binaries:
// it builds cmd/nsserve and cmd/nsrouter, starts a router over two live
// replicas plus one dead replica URL (kept in the ring by an effectively
// disabled health checker, so roughly a third of the keyspace is forced
// through the retry path), drives mixed traffic with explicit request
// IDs, and then pulls one retried request's stitched trace back through
// the router. The trace must pass trace.ValidateChrome and span at least
// two distinct pids — the router process and the serving replica. The
// raw trace is written to NSTRACE_ARTIFACT (when set) for upload.
// Gated behind NSTRACE_SMOKE=1: it builds binaries and binds real ports.
func TestTraceSmoke(t *testing.T) {
	if os.Getenv("NSTRACE_SMOKE") == "" {
		t.Skip("set NSTRACE_SMOKE=1 to run the stitched-trace smoke test")
	}
	bin := t.TempDir()
	nsserve := filepath.Join(bin, "nsserve")
	nsrouter := filepath.Join(bin, "nsrouter")
	for target, pkg := range map[string]string{nsserve: "./cmd/nsserve", nsrouter: "./cmd/nsrouter"} {
		cmd := exec.Command("go", "build", "-o", target, pkg)
		cmd.Dir = "../.."
		if out, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("building %s: %v\n%s", pkg, err, out)
		}
	}

	freePort := func() string {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer l.Close()
		return l.Addr().String()
	}
	addrA, addrB, addrR := freePort(), freePort(), freePort()
	addrDead := freePort() // never started: every attempt is a transport error

	start := func(name string, args ...string) {
		cmd := exec.Command(name, args...)
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			t.Fatalf("starting %s: %v", name, err)
		}
		t.Cleanup(func() {
			cmd.Process.Kill()
			cmd.Wait()
		})
	}
	start(nsserve, "-addr", addrA, "-quiet", "-node-name", "replica-a")
	start(nsserve, "-addr", addrB, "-quiet", "-node-name", "replica-b")
	// The dead node must stay in the ring for the whole run: a one-hour
	// probe interval means the health checker never gets to eject it.
	start(nsrouter,
		"-addr", addrR,
		"-replicas", fmt.Sprintf("http://%s,http://%s,http://%s", addrA, addrB, addrDead),
		"-node-name", "nsrouter-smoke",
		"-probe-interval", "1h", "-quiet")

	base := "http://" + addrR
	await(t, "router ready", func() bool {
		resp, err := http.Get(base + "/readyz")
		if err != nil {
			return false
		}
		resp.Body.Close()
		return resp.StatusCode == http.StatusOK
	})

	// Mixed traffic with explicit request IDs. Keys owned by the dead
	// node fail their first attempt at the transport and retry onto a
	// live replica — every request must still answer 200.
	workloads := []string{"LNN", "LTN"}
	devices := []string{"RTX 2080 Ti", "Xavier NX", "Jetson TX2", "Xeon Silver 4114"}
	const total = 60
	for i := 0; i < total; i++ {
		body := fmt.Sprintf(`{"workload":%q,"device":%q}`,
			workloads[i%len(workloads)], devices[(i/len(workloads))%len(devices)])
		req, err := http.NewRequest(http.MethodPost, base+"/v1/characterize", bytes.NewReader([]byte(body)))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set("X-Request-ID", fmt.Sprintf("smoke-%03d", i))
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d (%s): %d, want 200 — retries must absorb the dead node", i, body, resp.StatusCode)
		}
	}

	// The dead node forced at least one retry.
	metricsResp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metricsBody, _ := io.ReadAll(metricsResp.Body)
	metricsResp.Body.Close()
	retried := false
	for _, line := range strings.Split(string(metricsBody), "\n") {
		if strings.HasPrefix(line, "nsrouter_retries_total") && !strings.HasSuffix(line, " 0") {
			retried = true
		}
	}
	if !retried {
		t.Fatalf("nsrouter_retries_total is zero — the dead replica forced no retries:\n%s", metricsBody)
	}

	// Pull the most recent request's stitched trace: recent IDs are still
	// in every flight recorder's ring.
	id := fmt.Sprintf("smoke-%03d", total-1)
	var traceBytes []byte
	await(t, "stitched trace for "+id, func() bool {
		resp, err := http.Get(base + "/v1/trace?request_id=" + id)
		if err != nil || resp.StatusCode != http.StatusOK {
			if resp != nil {
				resp.Body.Close()
			}
			return false
		}
		traceBytes, err = io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return false
		}
		// Both processes present? The replica's root span can trail the
		// response by a scheduler beat.
		return countTracePids(t, traceBytes) >= 2
	})

	if artifact := os.Getenv("NSTRACE_ARTIFACT"); artifact != "" {
		if err := os.WriteFile(artifact, traceBytes, 0o644); err != nil {
			t.Fatalf("writing trace artifact: %v", err)
		}
	}

	stats, err := trace.ValidateChrome(traceBytes)
	if err != nil {
		t.Fatalf("stitched trace invalid: %v\n%s", err, traceBytes)
	}
	if stats.Events == 0 {
		t.Fatal("stitched trace has no events")
	}
	if pids := countTracePids(t, traceBytes); pids < 2 {
		t.Fatalf("stitched trace spans %d pids, want >= 2 (router + replica)", pids)
	}
}

// countTracePids counts distinct pids among non-metadata trace events.
func countTracePids(t *testing.T, raw []byte) int {
	t.Helper()
	var doc struct {
		TraceEvents []struct {
			Ph  string `json:"ph"`
			PID int    `json:"pid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		return 0
	}
	pids := map[int]bool{}
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "M" {
			pids[ev.PID] = true
		}
	}
	return len(pids)
}
