package cluster

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"github.com/neurosym/nsbench/internal/hwsim"
	"github.com/neurosym/nsbench/internal/serve"
	"github.com/neurosym/nsbench/internal/trace"
)

// frontDoor is a scriptable listener placed in the router's replica
// list. Its serving behavior is assigned AFTER the router is built:
// the test reads the ring's actual failover order for one key and then
// decides which node stalls, which fails fast, and which forwards to a
// real serve.Server — instead of hunting for a key with a particular
// ring order, which the ring's lumpy successor arcs make flaky.
type frontDoor struct {
	hs      *httptest.Server
	handler atomic.Value // http.Handler for everything but /readyz
}

func newFrontDoor(t *testing.T) *frontDoor {
	t.Helper()
	f := &frontDoor{}
	mux := http.NewServeMux()
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) { w.WriteHeader(http.StatusOK) })
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if h, ok := f.handler.Load().(http.Handler); ok {
			h.ServeHTTP(w, r)
			return
		}
		http.Error(w, "unscripted front door", http.StatusServiceUnavailable)
	})
	f.hs = httptest.NewServer(mux)
	t.Cleanup(f.hs.Close)
	return f
}

// breakConnAfter scripts a transport failure: hold the connection for
// delay, then sever it mid-request.
func breakConnAfter(delay time.Duration) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		time.Sleep(delay)
		conn, _, err := w.(http.Hijacker).Hijack()
		if err == nil {
			conn.Close()
		}
	})
}

// newNamedServer is a real serve.Server with a flight recorder and a
// stable node name for stitched-trace assertions.
func newNamedServer(t *testing.T, name string) *serve.Server {
	t.Helper()
	s, err := serve.New(serve.Config{CacheSize: 64, RecorderSize: 256, NodeName: name})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

// TestClusterStitchedTraceEndToEnd is the tracing acceptance test: one
// request whose failover order is [slow-fail, fast-fail, real replica]
// with hedging armed. The primary stalls past the hedge delay, the hedge
// races the second node and both fail, and the retry loop lands the
// request on a real replica. The stitched view of that single request
// must merge the router's spans (hedge lanes, backoffs, winning proxy
// hop) with the replica's serving spans and engine events into one
// Perfetto-valid Chrome trace — distinct pids per process, per-hop spans
// inside the router's root span.
func TestClusterStitchedTraceEndToEnd(t *testing.T) {
	testWorkloads()
	fronts := []*frontDoor{newFrontDoor(t), newFrontDoor(t), newFrontDoor(t), newFrontDoor(t)}
	byURL := map[string]*frontDoor{}
	urls := make([]string, len(fronts))
	for i, f := range fronts {
		urls[i] = f.hs.URL
		byURL[f.hs.URL] = f
	}

	rt := newTestRouter(t, Config{
		Replicas:       urls,
		Health:         HealthConfig{Interval: 50 * time.Millisecond, Timeout: time.Second, EjectAfter: 10, ReadmitAfter: 2},
		Hedge:          true,
		HedgeMinDelay:  15 * time.Millisecond,
		RetryBaseDelay: time.Millisecond,
		NodeName:       "nsrouter-test",
		MaxAttempts:    4,
	})
	h := rt.Handler()

	// Script the failover order of one concrete key: the primary stalls
	// past the hedge delay before breaking the connection, the hedge
	// target breaks it immediately, and the remaining two nodes are real
	// replicas — so the request hedges, loses both lanes, and retries
	// onto a real replica.
	body := fmt.Sprintf(`{"workload":%q,"device":%q}`, "clusterfast-a", hwsim.RTX2080Ti.Name)
	_, key, err := serve.Canonicalize(serve.Request{Workload: "clusterfast-a", Device: hwsim.RTX2080Ti.Name})
	if err != nil {
		t.Fatal(err)
	}
	order := rt.ring.GetN(key, 4)
	if len(order) != 4 {
		t.Fatalf("failover order has %d nodes, want 4", len(order))
	}
	byURL[order[0]].handler.Store(breakConnAfter(80 * time.Millisecond))
	byURL[order[1]].handler.Store(breakConnAfter(0))
	byURL[order[2]].handler.Store(newNamedServer(t, "replica-a").Handler())
	byURL[order[3]].handler.Store(newNamedServer(t, "replica-b").Handler())

	rec := routerPost(h, body)
	if rec.Code != http.StatusOK {
		t.Fatalf("hedged+retried request: %d %s", rec.Code, rec.Body)
	}
	// The broken fronts have played their part; the stitched-trace
	// fan-out below queries all configured nodes, so let those two
	// answer an instant 404 instead of stalling every poll.
	byURL[order[0]].handler.Store(http.NotFoundHandler())
	byURL[order[1]].handler.Store(http.NotFoundHandler())
	id := rec.Header().Get("X-Request-ID")
	if id == "" {
		t.Fatal("no X-Request-ID on routed response")
	}
	if servedBy := rec.Header().Get("X-NSRouter-Node"); servedBy != order[2] {
		t.Fatalf("served by %s, want the first real replica %s", servedBy, order[2])
	}

	// The request hedged (both the stalled primary and the hedge failed)
	// and then retried onto a real replica.
	if rt.hedgeFired.Value() != 1 {
		t.Fatalf("hedges fired = %d, want 1", rt.hedgeFired.Value())
	}
	if got := rt.hedgeOutcome.With("both_failed").Value(); got != 1 {
		t.Fatalf("hedge_total{outcome=both_failed} = %d, want 1", got)
	}
	if rt.retries.Value() == 0 {
		t.Fatal("no retry counted")
	}

	// The replica records its root serving span as the response unwinds,
	// so the trace can trail the response by a scheduler beat.
	var procs []trace.RequestTrace
	await(t, "replica slice in stitched trace", func() bool {
		rec := routerGet(h, "/v1/trace?request_id="+id+"&format=json")
		if rec.Code != http.StatusOK {
			return false
		}
		procs = nil
		if err := json.Unmarshal(rec.Body.Bytes(), &procs); err != nil {
			return false
		}
		for _, p := range procs {
			for _, s := range p.Spans {
				if s.Name == "serve.characterize" {
					return true
				}
			}
		}
		return false
	})

	if len(procs) < 2 {
		t.Fatalf("stitched trace has %d process slices, want router + replica", len(procs))
	}
	nodes := map[string]bool{}
	for _, p := range procs {
		nodes[p.Node] = true
	}
	if !nodes["nsrouter-test"] {
		t.Fatalf("process nodes = %v, missing the router", nodes)
	}
	if !nodes["replica-a"] && !nodes["replica-b"] {
		t.Fatalf("process nodes = %v, missing a replica", nodes)
	}

	// Chrome form: Perfetto-valid, with the two processes on distinct
	// pids and every router hop inside the router's root span.
	chrome := routerGet(h, "/v1/trace?request_id="+id)
	if chrome.Code != http.StatusOK {
		t.Fatalf("chrome trace: %d %s", chrome.Code, chrome.Body)
	}
	stats, err := trace.ValidateChrome(chrome.Body.Bytes())
	if err != nil {
		t.Fatalf("stitched trace invalid: %v", err)
	}
	if stats.Events == 0 {
		t.Fatal("stitched trace is empty")
	}

	var doc struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Ts   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
			PID  int     `json:"pid"`
			TID  int     `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(chrome.Body.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	pids := map[int]bool{}
	var rootStart, rootEnd float64
	rootPID := -1
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "M" {
			continue
		}
		pids[ev.PID] = true
		if ev.Name == "route.characterize" {
			rootPID, rootStart, rootEnd = ev.PID, ev.Ts, ev.Ts+ev.Dur
		}
	}
	if len(pids) < 2 {
		t.Fatalf("stitched trace spans %d pids, want >= 2 (router + replica)", len(pids))
	}
	if rootPID < 0 {
		t.Fatal("router root span route.characterize not in stitched trace")
	}
	hops := 0
	sawHedgeLane := false
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "M" || ev.PID != rootPID {
			continue
		}
		isHop := len(ev.Name) > 5 && ev.Name[:5] == "proxy"
		isBackoff := len(ev.Name) > 5 && ev.Name[:5] == "retry"
		if !isHop && !isBackoff {
			continue
		}
		hops++
		if ev.Ts < rootStart || ev.Ts+ev.Dur > rootEnd+1 {
			t.Fatalf("hop %q [%v,%v] escapes router root [%v,%v]",
				ev.Name, ev.Ts, ev.Ts+ev.Dur, rootStart, rootEnd)
		}
		if isHop && ev.TID == 1 {
			sawHedgeLane = true
		}
	}
	if hops < 3 {
		t.Fatalf("router recorded %d hop/backoff spans, want >= 3 (hedge race + retries)", hops)
	}
	if !sawHedgeLane {
		t.Fatal("no proxy span on the hedge lane (tid 1)")
	}
}

// routerGet issues one GET through the router handler.
func routerGet(h http.Handler, path string) *httptest.ResponseRecorder {
	req := httptest.NewRequest(http.MethodGet, path, nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

// TestHedgeLoserCanceledNotEjected: when the hedge wins, the reaped
// primary records a span tagged canceled and feeds no failure streak —
// hedging must never eject a healthy-but-slow node.
func TestHedgeLoserCanceledNotEjected(t *testing.T) {
	slow := stubReplica(t, func(w http.ResponseWriter, r *http.Request) {
		// Drain the body so the server's background read detects the
		// client abort and cancels the request context.
		io.Copy(io.Discard, r.Body)
		select {
		case <-r.Context().Done():
		case <-time.After(10 * time.Second):
		}
	})
	fast := stubReplica(t, func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, `{"ok":true}`)
	})
	rt := newTestRouter(t, Config{
		Replicas:      []string{slow.URL, fast.URL},
		Health:        fastHealth(),
		Hedge:         true,
		HedgeMinDelay: 5 * time.Millisecond,
	})
	h := rt.Handler()

	body, _ := keyOwnedBy(t, rt, slow.URL)
	rec := routerPost(h, body)
	if rec.Code != http.StatusOK {
		t.Fatalf("hedged request: %d %s", rec.Code, rec.Body)
	}
	id := rec.Header().Get("X-Request-ID")
	if got := rt.hedgeOutcome.With("hedge").Value(); got != 1 {
		t.Fatalf("hedge_total{outcome=hedge} = %d, want 1", got)
	}

	// The loser's cancellation lands asynchronously after the winner's
	// response is already on the wire.
	await(t, "canceled loser span", func() bool {
		for _, s := range rt.recorder.SpansByID(id) {
			if s.Span.Name == "proxy("+slow.URL+") canceled" {
				return true
			}
		}
		return false
	})
	if got := rt.nodeErrs.With(slow.URL).Value(); got != 0 {
		t.Fatalf("canceled loser counted %d node errors, want 0", got)
	}
	// A few health-check intervals later the slow node is still in the
	// ring: the cancel fed no failure streak.
	time.Sleep(50 * time.Millisecond)
	if rt.ring.Len() != 2 {
		t.Fatalf("ring has %d nodes after hedge race, want 2 (loser must not be ejected)", rt.ring.Len())
	}
}

// TestHedgeOutcomePrimaryWin: a primary that answers after the hedge
// launched but before the hedge finishes counts outcome=primary.
func TestHedgeOutcomePrimaryWin(t *testing.T) {
	primary := stubReplica(t, func(w http.ResponseWriter, r *http.Request) {
		time.Sleep(60 * time.Millisecond)
		fmt.Fprint(w, `{"ok":true}`)
	})
	backup := stubReplica(t, func(w http.ResponseWriter, r *http.Request) {
		io.Copy(io.Discard, r.Body)
		select {
		case <-r.Context().Done():
		case <-time.After(10 * time.Second):
		}
	})
	rt := newTestRouter(t, Config{
		Replicas:      []string{primary.URL, backup.URL},
		Health:        fastHealth(),
		Hedge:         true,
		HedgeMinDelay: 5 * time.Millisecond,
	})
	h := rt.Handler()

	body, _ := keyOwnedBy(t, rt, primary.URL)
	rec := routerPost(h, body)
	if rec.Code != http.StatusOK {
		t.Fatalf("request: %d %s", rec.Code, rec.Body)
	}
	if rt.hedgeFired.Value() != 1 {
		t.Fatalf("hedges fired = %d, want 1", rt.hedgeFired.Value())
	}
	if got := rt.hedgeOutcome.With("primary").Value(); got != 1 {
		t.Fatalf("hedge_total{outcome=primary} = %d, want 1", got)
	}
	if rt.hedgeWon.Value() != 0 {
		t.Fatalf("hedge wins = %d, want 0", rt.hedgeWon.Value())
	}
}
