package cluster

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// transitions records eject/readmit callbacks in order.
type transitions struct {
	mu  sync.Mutex
	log []string
}

func (tr *transitions) eject(node string)   { tr.add("eject:" + node) }
func (tr *transitions) readmit(node string) { tr.add("readmit:" + node) }
func (tr *transitions) add(s string) {
	tr.mu.Lock()
	tr.log = append(tr.log, s)
	tr.mu.Unlock()
}
func (tr *transitions) snapshot() []string {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	return append([]string(nil), tr.log...)
}

func TestCheckerPassiveEjectionAndProbation(t *testing.T) {
	var tr transitions
	probe := func(node string) error { return errors.New("down") }
	c := NewChecker(HealthConfig{EjectAfter: 3, ReadmitAfter: 2}, []string{"n1", "n2"}, probe, tr.eject, tr.readmit)
	// Not started: only passive reports drive transitions.

	c.ReportFailure("n1")
	c.ReportFailure("n1")
	if got := c.Ejected(); len(got) != 0 {
		t.Fatalf("ejected after 2/3 failures: %v", got)
	}
	// A success resets the streak: one flaky probe never ejects.
	c.ReportSuccess("n1")
	c.ReportFailure("n1")
	c.ReportFailure("n1")
	if got := c.Ejected(); len(got) != 0 {
		t.Fatalf("streak did not reset: %v", got)
	}
	c.ReportFailure("n1")
	if got := c.Ejected(); len(got) != 1 || got[0] != "n1" {
		t.Fatalf("ejected = %v, want [n1]", got)
	}
	// Probation: one success is not enough to readmit...
	c.ReportSuccess("n1")
	if got := c.Ejected(); len(got) != 1 {
		t.Fatalf("readmitted after 1/2 successes: %v", got)
	}
	// ...and an interleaved failure resets the success streak.
	c.ReportFailure("n1")
	c.ReportSuccess("n1")
	if got := c.Ejected(); len(got) != 1 {
		t.Fatalf("probation streak did not reset: %v", got)
	}
	c.ReportSuccess("n1")
	if got := c.Ejected(); len(got) != 0 {
		t.Fatalf("still ejected after consecutive successes: %v", got)
	}
	want := []string{"eject:n1", "readmit:n1"}
	if got := tr.snapshot(); len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("transitions = %v, want %v", got, want)
	}
	// Unknown nodes are ignored, not tracked.
	c.ReportFailure("unknown")
	c.ReportFailure("unknown")
	c.ReportFailure("unknown")
	if got := tr.snapshot(); len(got) != 2 {
		t.Fatalf("unknown node caused transitions: %v", got)
	}
}

// TestCheckerActiveProbing drives the real probe loop against a replica
// whose readiness flips: up → down (ejected) → up (readmitted).
func TestCheckerActiveProbing(t *testing.T) {
	var ready atomic.Bool
	ready.Store(true)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/readyz" {
			t.Errorf("probe hit %s, want /readyz", r.URL.Path)
		}
		if !ready.Load() {
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		w.WriteHeader(http.StatusOK)
	}))
	defer srv.Close()

	var tr transitions
	c := NewChecker(HealthConfig{
		Interval:     5 * time.Millisecond,
		Timeout:      time.Second,
		EjectAfter:   2,
		ReadmitAfter: 2,
	}, []string{srv.URL}, nil, tr.eject, tr.readmit)
	c.Start()
	defer c.Close()

	wait := func(what string, cond func() bool) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for !cond() {
			if time.Now().After(deadline) {
				t.Fatalf("timed out waiting for %s (transitions %v)", what, tr.snapshot())
			}
			time.Sleep(2 * time.Millisecond)
		}
	}

	// Healthy start: stays in.
	time.Sleep(30 * time.Millisecond)
	if got := c.Ejected(); len(got) != 0 {
		t.Fatalf("healthy node ejected: %v", got)
	}
	ready.Store(false)
	wait("ejection", func() bool { return len(c.Ejected()) == 1 })
	ready.Store(true)
	wait("readmission", func() bool { return len(c.Ejected()) == 0 })
	log := tr.snapshot()
	if len(log) < 2 || log[0] != "eject:"+srv.URL || log[1] != "readmit:"+srv.URL {
		t.Fatalf("transitions = %v, want eject then readmit of %s", log, srv.URL)
	}
}
