package cluster

import (
	"encoding/json"
	"net/http"
	"sort"
	"sync"

	"github.com/neurosym/nsbench/internal/serve"
)

// NodeStats is one replica's /v1/stats snapshot as seen by the router,
// or the error that stood in for it.
type NodeStats struct {
	Node  string         `json:"node"`
	Stats serve.Snapshot `json:"stats,omitempty"`
	Err   string         `json:"error,omitempty"`
}

// ClusterStats is the aggregated GET /v1/stats payload: the counter sums
// across every live replica plus the per-node detail the sums hide.
// AvgRunNanos is recomputed from the summed totals (a mean of means
// would weight idle replicas equally with busy ones).
type ClusterStats struct {
	LiveNodes    int      `json:"live_nodes"`
	EjectedNodes []string `json:"ejected_nodes"`
	// DepartedNodes are replicas that left the cluster during the fan-out
	// itself: they were live when the probe started and gone (membership
	// leave or TTL expiry) by the time their answer was due. Expected
	// churn, not an error.
	DepartedNodes []string       `json:"departed_nodes"`
	Cluster       serve.Snapshot `json:"cluster"`
	Nodes         []NodeStats    `json:"nodes"`
}

// aggregate fans one stats probe out to every live replica concurrently
// and sums the snapshots. Replicas that fail to answer appear with an
// error string and contribute nothing to the sums — unless they stopped
// being cluster members mid-fan-out, in which case the failure is just
// the departure observed from the wrong side and they are reported under
// departed_nodes instead.
func (rt *Router) aggregate(r *http.Request) ClusterStats {
	nodes := rt.ring.Nodes()
	out := ClusterStats{
		LiveNodes:     len(nodes),
		EjectedNodes:  rt.health.Ejected(),
		DepartedNodes: []string{},
		Nodes:         make([]NodeStats, len(nodes)),
	}
	if out.EjectedNodes == nil {
		out.EjectedNodes = []string{}
	}
	var wg sync.WaitGroup
	for i, node := range nodes {
		wg.Add(1)
		go func(i int, node string) {
			defer wg.Done()
			ns := NodeStats{Node: node}
			up, err := rt.attempt(r.Context(), node, http.MethodGet, "/v1/stats", nil, requestID(r), 0)
			switch {
			case err != nil:
				ns.Err = err.Error()
			case up.code != http.StatusOK:
				ns.Err = "status " + http.StatusText(up.code)
			default:
				if err := json.Unmarshal(up.body, &ns.Stats); err != nil {
					ns.Err = "bad stats payload: " + err.Error()
				}
			}
			out.Nodes[i] = ns
		}(i, node)
	}
	wg.Wait()
	// Reclassify errored rows whose node left the cluster while the
	// fan-out was in flight: membership is re-checked after the probes so
	// a leave that raced the probe is seen either way.
	kept := out.Nodes[:0]
	for _, ns := range out.Nodes {
		if ns.Err != "" && !rt.member.Contains(ns.Node) {
			out.DepartedNodes = append(out.DepartedNodes, ns.Node)
			continue
		}
		kept = append(kept, ns)
	}
	out.Nodes = kept
	sort.Strings(out.DepartedNodes)
	sort.Slice(out.Nodes, func(i, j int) bool { return out.Nodes[i].Node < out.Nodes[j].Node })
	for _, ns := range out.Nodes {
		if ns.Err != "" {
			continue
		}
		s := ns.Stats
		c := &out.Cluster
		c.Requests += s.Requests
		c.CacheHits += s.CacheHits
		c.CacheMiss += s.CacheMiss
		c.DedupJoins += s.DedupJoins
		c.Rejected += s.Rejected
		c.Timeouts += s.Timeouts
		c.Abandoned += s.Abandoned
		c.Failures += s.Failures
		c.Runs += s.Runs
		c.RunNanos += s.RunNanos
		c.CacheSize += s.CacheSize
		c.QueueDepth += s.QueueDepth
		c.BatchesRun += s.BatchesRun
		c.SweepsRun += s.SweepsRun
		c.PointsEvaluated += s.PointsEvaluated
	}
	if out.Cluster.Runs > 0 {
		out.Cluster.AvgRunNanos = out.Cluster.RunNanos / out.Cluster.Runs
	}
	return out
}

// handleStats serves the aggregated cluster counters.
func (rt *Router) handleStats(w http.ResponseWriter, r *http.Request) {
	if !allowMethods(w, r, http.MethodGet) {
		return
	}
	b, err := json.Marshal(rt.aggregate(r))
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(b)
}
