package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync"
	"testing"
	"time"

	"github.com/neurosym/nsbench/internal/core"
	"github.com/neurosym/nsbench/internal/hwsim"
	"github.com/neurosym/nsbench/internal/ops"
	"github.com/neurosym/nsbench/internal/serve"
	"github.com/neurosym/nsbench/internal/tensor"
)

// clusterWorkload is a registry workload cheap enough to characterize
// many times in a test run.
type clusterWorkload struct{ name string }

func (c *clusterWorkload) Name() string     { return c.name }
func (c *clusterWorkload) Category() string { return "Test" }
func (c *clusterWorkload) Run(e *ops.Engine) error {
	g := tensor.NewRNG(7)
	e.Add(g.Normal(0, 1, 64), g.Normal(0, 1, 64))
	return nil
}

var registerClusterWorkloads sync.Once

func testWorkloads() []string {
	registerClusterWorkloads.Do(func() {
		core.RegisterWorkload("clusterfast-a", func() core.Workload { return &clusterWorkload{name: "clusterfast-a"} })
		core.RegisterWorkload("clusterfast-b", func() core.Workload { return &clusterWorkload{name: "clusterfast-b"} })
	})
	return []string{"clusterfast-a", "clusterfast-b"}
}

// replica is one real serve.Server behind a real listener.
type replica struct {
	srv  *serve.Server
	hs   *httptest.Server
	open bool
}

func startReplica(t *testing.T) *replica {
	t.Helper()
	s, err := serve.New(serve.Config{CacheSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	rep := &replica{srv: s, hs: httptest.NewServer(s.Handler()), open: true}
	t.Cleanup(rep.stop)
	return rep
}

// stop closes listener then server; safe to call twice.
func (rep *replica) stop() {
	if rep.open {
		rep.open = false
		rep.hs.Close()
	}
	rep.srv.Close()
}

func await(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// deterministicReport is the subset of the report schema that is a pure
// function of the canonical request: structure, operation counts, and
// data-dependent statistics — everything except measured wall-clock time
// and quantities derived from it. Cross-process report comparisons use
// this subset; bytes of *one* process's report are separately asserted
// stable via the cluster cache.
type deterministicReport struct {
	Name     string          `json:"name"`
	Category string          `json:"category"`
	Memory   json.RawMessage `json:"memory"`
	Roofline []struct {
		Name string  `json:"name"`
		AI   float64 `json:"arithmetic_intensity"`
	} `json:"roofline"`
	Dataflow struct {
		Events           int `json:"events"`
		Edges            int `json:"edges"`
		Depth            int `json:"depth"`
		MaxWidth         int `json:"max_width"`
		NeuralToSymbolic int `json:"neural_to_symbolic_edges"`
		SymbolicToNeural int `json:"symbolic_to_neural_edges"`
	} `json:"dataflow"`
}

func mustDeterministic(t *testing.T, b []byte) deterministicReport {
	t.Helper()
	var out deterministicReport
	if err := json.Unmarshal(b, &out); err != nil {
		t.Fatalf("report did not parse: %v\n%s", err, b)
	}
	return out
}

func getStats(t *testing.T, base string) serve.Snapshot {
	t.Helper()
	resp, err := http.Get(base + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap serve.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	return snap
}

// TestClusterEndToEndFailover is the acceptance test for the serving
// tier: 3 replicas behind a router, a fixed request set driven through
// it twice, one replica drained and killed mid-stream, and the same set
// driven again. It asserts
//
//   - responses through the router are byte-identical to the owning
//     replica's own response (the proxy is a pass-through),
//   - repeats of a key are byte-identical and cache-hit (per-key
//     single-owner routing keeps each replica's LRU authoritative),
//   - per-replica cache counters prove each canonical key landed on
//     exactly one live replica,
//   - reports match a single-node nsserve in every
//     request-deterministic field (same canonicalization, same
//     Report.MarshalJSON schema),
//   - after drain + ejection of one replica every request still answers
//     200, orphaned keys are recomputed by a surviving replica, and
//     unaffected keys keep their exact bytes.
func TestClusterEndToEndFailover(t *testing.T) {
	workloads := testWorkloads()
	devices := []string{hwsim.RTX2080Ti.Name, hwsim.XavierNX.Name, hwsim.JetsonTX2.Name}

	reps := []*replica{startReplica(t), startReplica(t), startReplica(t)}
	urls := make([]string, len(reps))
	byURL := map[string]*replica{}
	for i, rep := range reps {
		urls[i] = rep.hs.URL
		byURL[rep.hs.URL] = rep
	}
	rt := newTestRouter(t, Config{
		Replicas:       urls,
		Health:         fastHealth(),
		RetryBaseDelay: time.Millisecond,
	})
	h := rt.Handler()

	type keyReq struct{ workload, device string }
	var keys []keyReq
	for _, wl := range workloads {
		for _, dev := range devices {
			keys = append(keys, keyReq{wl, dev})
		}
	}
	body := func(k keyReq) string {
		return fmt.Sprintf(`{"workload":%q,"device":%q}`, k.workload, k.device)
	}

	// Single-node reference for the deterministic report subset.
	ref := startReplica(t)
	refBytes := map[keyReq][]byte{}
	for _, k := range keys {
		rec := routerPost(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			ref.srv.Handler().ServeHTTP(w, r)
		}), body(k))
		if rec.Code != http.StatusOK {
			t.Fatalf("reference %v: %d %s", k, rec.Code, rec.Body)
		}
		refBytes[k] = append([]byte(nil), rec.Body.Bytes()...)
	}

	// Pass 1: every key once through the router.
	routed := map[keyReq][]byte{}
	owner := map[keyReq]string{}
	for _, k := range keys {
		rec := routerPost(h, body(k))
		if rec.Code != http.StatusOK {
			t.Fatalf("pass 1 %v: %d %s", k, rec.Code, rec.Body)
		}
		if got := rec.Header().Get("X-NSServe-Cache"); got != "miss" {
			t.Fatalf("pass 1 %v cache disposition %q, want miss", k, got)
		}
		routed[k] = append([]byte(nil), rec.Body.Bytes()...)
		owner[k] = rec.Header().Get("X-NSRouter-Node")
		if owner[k] == "" {
			t.Fatalf("pass 1 %v: no X-NSRouter-Node", k)
		}
	}

	// Pass 2: repeats are cache hits on the same owner, byte-identical.
	for _, k := range keys {
		rec := routerPost(h, body(k))
		if rec.Code != http.StatusOK {
			t.Fatalf("pass 2 %v: %d %s", k, rec.Code, rec.Body)
		}
		if got := rec.Header().Get("X-NSServe-Cache"); got != "hit" {
			t.Fatalf("pass 2 %v cache disposition %q, want hit (owner must be stable)", k, got)
		}
		if got := rec.Header().Get("X-NSRouter-Node"); got != owner[k] {
			t.Fatalf("pass 2 %v routed to %s, pass 1 went to %s", k, got, owner[k])
		}
		if !bytes.Equal(rec.Body.Bytes(), routed[k]) {
			t.Fatalf("pass 2 %v bytes differ from pass 1", k)
		}
	}

	// Equivalent spellings canonicalize identically and hit the same owner.
	{
		k := keys[0]
		rec := routerPost(h, fmt.Sprintf(`{"workload":%q,"device":%q}`,
			"CLUSTERFAST-A", "rtx 2080 ti"))
		if rec.Code != http.StatusOK || rec.Header().Get("X-NSServe-Cache") != "hit" {
			t.Fatalf("alt spelling: %d cache=%q, want 200 hit", rec.Code, rec.Header().Get("X-NSServe-Cache"))
		}
		if got := rec.Header().Get("X-NSRouter-Node"); got != owner[k] {
			t.Fatalf("alt spelling routed to %s, want %s", got, owner[k])
		}
		if !bytes.Equal(rec.Body.Bytes(), routed[k]) {
			t.Fatal("alt spelling returned different bytes")
		}
	}

	// The router is a byte-transparent proxy: the owner's direct answer is
	// the routed answer.
	for _, k := range keys {
		rec := routerPost(byURL[owner[k]].srv.Handler(), body(k))
		if rec.Code != http.StatusOK {
			t.Fatalf("direct to owner %v: %d", k, rec.Code)
		}
		if !bytes.Equal(rec.Body.Bytes(), routed[k]) {
			t.Fatalf("%v: routed bytes differ from the owner's direct response", k)
		}
	}

	// Per-replica cache counters: each canonical key missed exactly once
	// cluster-wide (one owner computed it) and every repeat hit. A key
	// that landed on two replicas would show as extra misses.
	var misses, hits int64
	for _, rep := range reps {
		snap := getStats(t, rep.hs.URL)
		misses += snap.CacheMiss
		hits += snap.CacheHits
	}
	if misses != int64(len(keys)) {
		t.Fatalf("cluster-wide cache misses = %d, want %d (each key computed on exactly one replica)", misses, len(keys))
	}
	// Pass 2 (len(keys)) + direct-to-owner (len(keys)) + alt spelling (1).
	if want := int64(2*len(keys) + 1); hits != want {
		t.Fatalf("cluster-wide cache hits = %d, want %d", hits, want)
	}

	// Same canonicalization and schema as single-node nsserve: every
	// request-deterministic field agrees with the reference server.
	for _, k := range keys {
		got, want := mustDeterministic(t, routed[k]), mustDeterministic(t, refBytes[k])
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%v: routed report disagrees with single-node nsserve\nrouted: %+v\nsingle: %+v", k, got, want)
		}
	}

	// Aggregated stats see all three replicas.
	{
		req := httptest.NewRequest(http.MethodGet, "/v1/stats", nil)
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		var agg ClusterStats
		if err := json.Unmarshal(rec.Body.Bytes(), &agg); err != nil {
			t.Fatal(err)
		}
		if agg.LiveNodes != 3 || len(agg.Nodes) != 3 {
			t.Fatalf("aggregated stats live=%d nodes=%d, want 3/3", agg.LiveNodes, len(agg.Nodes))
		}
		if agg.Cluster.CacheMiss != int64(len(keys)) {
			t.Fatalf("aggregated cluster misses = %d, want %d", agg.Cluster.CacheMiss, len(keys))
		}
	}

	// Drain + kill the replica owning keys[0]: readiness flips first (the
	// checker ejects it while its listener still answers), then the
	// listener closes — the production shutdown order.
	victimURL := owner[keys[0]]
	victim := byURL[victimURL]
	victim.srv.BeginDrain()
	await(t, "victim ejection", func() bool { return rt.ring.Len() == 2 })
	victim.stop()

	// Mid-stream failover: the full set again. Orphaned keys recompute on
	// a surviving replica; unaffected keys keep their exact bytes.
	for _, k := range keys {
		rec := routerPost(h, body(k))
		if rec.Code != http.StatusOK {
			t.Fatalf("post-failover %v: %d %s", k, rec.Code, rec.Body)
		}
		newOwner := rec.Header().Get("X-NSRouter-Node")
		if newOwner == victimURL {
			t.Fatalf("post-failover %v routed to the dead replica", k)
		}
		if owner[k] == victimURL {
			// Orphaned key: recomputed elsewhere — deterministic fields
			// must still match the reference.
			got, want := mustDeterministic(t, rec.Body.Bytes()), mustDeterministic(t, refBytes[k])
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("post-failover %v: recomputed report disagrees with single-node reference", k)
			}
		} else {
			if newOwner != owner[k] {
				t.Fatalf("post-failover %v moved from %s to %s — surviving keys must not move", k, owner[k], newOwner)
			}
			if !bytes.Equal(rec.Body.Bytes(), routed[k]) {
				t.Fatalf("post-failover %v bytes changed on a surviving owner", k)
			}
		}
	}

	// Aggregated stats now reflect the shrunken cluster.
	{
		req := httptest.NewRequest(http.MethodGet, "/v1/stats", nil)
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		var agg ClusterStats
		if err := json.Unmarshal(rec.Body.Bytes(), &agg); err != nil {
			t.Fatal(err)
		}
		if agg.LiveNodes != 2 || len(agg.EjectedNodes) != 1 || agg.EjectedNodes[0] != victimURL {
			t.Fatalf("post-failover stats live=%d ejected=%v, want 2 live and [%s]", agg.LiveNodes, agg.EjectedNodes, victimURL)
		}
	}
}
