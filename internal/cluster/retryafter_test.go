package cluster

import (
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"github.com/neurosym/nsbench/internal/membership"
)

// TestRouterPropagatesRetryAfter pins the backpressure contract end to
// end: a shed replica's computed Retry-After survives the router hop on a
// terminal 429, and the router's own 503/502 error paths carry a hint of
// their own instead of leaving clients to guess.
func TestRouterPropagatesRetryAfter(t *testing.T) {
	// Terminal 429: the only replica sheds with a computed backoff.
	shed := stubReplica(t, func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "7")
		http.Error(w, "queue full", http.StatusTooManyRequests)
	})
	rt := newTestRouter(t, Config{
		Replicas:       []string{shed.URL},
		Health:         HealthConfig{Interval: time.Hour, EjectAfter: 100},
		RetryBaseDelay: time.Millisecond,
	})
	rec := routerPost(rt.Handler(), `{"workload":"LNN"}`)
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("shed replica: %d, want 429", rec.Code)
	}
	if got := rec.Header().Get("Retry-After"); got != "7" {
		t.Fatalf("replica Retry-After lost at the router hop: %q, want \"7\"", got)
	}

	// Empty ring 503: the hint is the probe cadence — when a replica can
	// next be readmitted.
	dead := stubReplica(t, func(w http.ResponseWriter, r *http.Request) {})
	dead.Close()
	rt2 := newTestRouter(t, Config{
		Replicas: []string{dead.URL},
		Health:   HealthConfig{Interval: 5 * time.Millisecond, EjectAfter: 1, ReadmitAfter: 100},
	})
	await(t, "dead replica ejected", func() bool { return rt2.ring.Len() == 0 })
	rec = routerPost(rt2.Handler(), `{"workload":"LNN"}`)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("empty ring: %d, want 503", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("empty-ring 503 carries no Retry-After")
	}

	// All-transport-failure 502: still worth one client backoff.
	broken := stubReplica(t, func(w http.ResponseWriter, r *http.Request) {
		conn, _, err := w.(http.Hijacker).Hijack()
		if err == nil {
			conn.Close()
		}
	})
	rt3 := newTestRouter(t, Config{
		Replicas:       []string{broken.URL},
		Health:         HealthConfig{Interval: time.Hour, EjectAfter: 100},
		RetryBaseDelay: time.Millisecond,
	})
	rec = routerPost(rt3.Handler(), `{"workload":"LNN"}`)
	if rec.Code != http.StatusBadGateway {
		t.Fatalf("broken transport: %d, want 502", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("all-replicas-failed 502 carries no Retry-After")
	}
}

// TestHedgeDelaySeededFromProbeRTT pins the hedge-timer cold-start fix:
// with a near-empty latency histogram the delay comes from the health
// prober's measured RTT (never below the floor), and only a matured
// histogram switches the timer to the observed quantile.
func TestHedgeDelaySeededFromProbeRTT(t *testing.T) {
	up := stubReplica(t, func(w http.ResponseWriter, r *http.Request) {})
	rt := newTestRouter(t, Config{
		Replicas: []string{up.URL},
		Hedge:    true,
		Health:   HealthConfig{Interval: time.Hour},
	})

	// No samples, no probe RTT recorded yet: the floor holds.
	rt.health.mu.Lock()
	rt.health.nodes[up.URL].rtt = 0
	rt.health.mu.Unlock()
	if got := rt.hedgeDelay(); got != rt.cfg.HedgeMinDelay {
		t.Fatalf("cold delay %v, want floor %v", got, rt.cfg.HedgeMinDelay)
	}

	// A measured probe RTT seeds the timer at a multiple of it — the old
	// behavior armed at the floor every time and hedged every early
	// request.
	rt.health.mu.Lock()
	rt.health.nodes[up.URL].rtt = 50 * time.Millisecond
	rt.health.mu.Unlock()
	if got, want := rt.hedgeDelay(), hedgeProbeRTTFactor*50*time.Millisecond; got != want {
		t.Fatalf("seeded delay %v, want %v (probe RTT × %d)", got, want, hedgeProbeRTTFactor)
	}

	// Once the histogram matures the observed quantile takes over: fast
	// real attempts pull the delay back down to the floor despite the
	// slow probe RTT.
	for i := 0; i < hedgeSeedMinSamples; i++ {
		rt.attemptLat.ObserveSeconds((2 * time.Millisecond).Nanoseconds())
	}
	if got := rt.hedgeDelay(); got != rt.cfg.HedgeMinDelay {
		t.Fatalf("matured delay %v, want quantile floored at %v", got, rt.cfg.HedgeMinDelay)
	}
}

// TestRouterEmptyRingReadyz (regression alongside the Retry-After work):
// /readyz keeps answering 503 while the ring is empty even with dynamic
// membership enabled and nothing joined yet.
func TestRouterEmptyRingMembershipOnly(t *testing.T) {
	rt := newTestRouter(t, Config{
		Membership: membership.Config{Enabled: true},
		Health:     fastHealth(),
	})
	rec := httptest.NewRecorder()
	rt.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/readyz", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("readyz with no members: %d, want 503", rec.Code)
	}
	post := routerPost(rt.Handler(), `{"workload":"LNN"}`)
	if post.Code != http.StatusServiceUnavailable || post.Header().Get("Retry-After") == "" {
		t.Fatalf("characterize with no members: %d (Retry-After %q), want 503 with hint",
			post.Code, post.Header().Get("Retry-After"))
	}
}
