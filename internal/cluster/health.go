package cluster

import (
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"
)

// HealthConfig parameterizes the replica health checker. The zero value
// gives production-ish defaults.
type HealthConfig struct {
	// Interval between active probe rounds; 0 selects 2s.
	Interval time.Duration
	// Timeout caps one probe; 0 selects 1s.
	Timeout time.Duration
	// EjectAfter is the consecutive-failure threshold (probes and passive
	// reports combined) that ejects a node; 0 selects 3.
	EjectAfter int
	// ReadmitAfter is the consecutive-success threshold that readmits an
	// ejected node from probation; 0 selects 2.
	ReadmitAfter int
	// Path is the readiness endpoint probed on each node; empty selects
	// "/readyz" (the serve.Server readiness split exists for this).
	Path string
}

func (c *HealthConfig) defaults() {
	if c.Interval == 0 {
		c.Interval = 2 * time.Second
	}
	if c.Timeout == 0 {
		c.Timeout = time.Second
	}
	if c.EjectAfter == 0 {
		c.EjectAfter = 3
	}
	if c.ReadmitAfter == 0 {
		c.ReadmitAfter = 2
	}
	if c.Path == "" {
		c.Path = "/readyz"
	}
}

// ProbeFunc actively checks one node, returning nil when it is ready.
type ProbeFunc func(node string) error

// Checker tracks replica health with a circuit-breaker lifecycle per
// node:
//
//	healthy --EjectAfter consecutive failures--> ejected (probation)
//	ejected --ReadmitAfter consecutive probe successes--> healthy
//
// Failures come from two directions: an active prober GETs each node's
// readiness endpoint every Interval, and the proxy path reports the
// failures it observes in-line (ReportFailure), so a crashed replica is
// usually ejected by live traffic before the next probe round fires.
// Ejected nodes keep being probed — probation — and any success resets
// the failure streak, so one flaky probe never flips a healthy node.
//
// The checker only decides; acting on the decision belongs to the
// onEject/onReadmit callbacks (the Router removes/re-adds ring nodes
// there). Callbacks run outside the checker's lock, one transition at a
// time per node.
type Checker struct {
	cfg   HealthConfig
	probe ProbeFunc

	onEject   func(node string)
	onReadmit func(node string)

	mu    sync.Mutex
	nodes map[string]*nodeHealth

	stop     chan struct{}
	done     chan struct{}
	stopOnce sync.Once
}

// nodeHealth is one node's consecutive-outcome state.
type nodeHealth struct {
	fails   int
	oks     int
	ejected bool
	// rtt is the most recent successful probe round-trip time. Zero until
	// the first probe lands; used to seed latency priors (hedge timer,
	// replica load scores) before real traffic accumulates samples.
	rtt time.Duration
}

// NewChecker builds a checker over nodes. probe may be nil, selecting
// the default HTTP readiness probe. Call Start to begin active probing;
// passive ReportFailure/ReportSuccess work immediately.
func NewChecker(cfg HealthConfig, nodes []string, probe ProbeFunc, onEject, onReadmit func(node string)) *Checker {
	cfg.defaults()
	c := &Checker{
		cfg:       cfg,
		probe:     probe,
		onEject:   onEject,
		onReadmit: onReadmit,
		nodes:     make(map[string]*nodeHealth, len(nodes)),
		stop:      make(chan struct{}),
		done:      make(chan struct{}),
	}
	for _, n := range nodes {
		c.nodes[n] = &nodeHealth{}
	}
	if c.probe == nil {
		client := &http.Client{Timeout: cfg.Timeout}
		c.probe = func(node string) error {
			resp, err := client.Get(node + cfg.Path)
			if err != nil {
				return err
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				return fmt.Errorf("%s%s: status %d", node, cfg.Path, resp.StatusCode)
			}
			return nil
		}
	}
	return c
}

// Start launches the active probe loop: one immediate round, then one
// every Interval until Close.
func (c *Checker) Start() {
	go func() {
		defer close(c.done)
		c.probeAll()
		t := time.NewTicker(c.cfg.Interval)
		defer t.Stop()
		for {
			select {
			case <-c.stop:
				return
			case <-t.C:
				c.probeAll()
			}
		}
	}()
}

// Close stops the probe loop and waits for it to exit. Idempotent.
func (c *Checker) Close() {
	c.stopOnce.Do(func() { close(c.stop) })
	<-c.done
}

// probeAll probes every node concurrently and feeds the outcomes through
// the same transition logic as passive reports.
func (c *Checker) probeAll() {
	c.mu.Lock()
	nodes := make([]string, 0, len(c.nodes))
	for n := range c.nodes {
		nodes = append(nodes, n)
	}
	c.mu.Unlock()
	var wg sync.WaitGroup
	for _, node := range nodes {
		wg.Add(1)
		go func(n string) {
			defer wg.Done()
			c.probeOne(n)
		}(node)
	}
	wg.Wait()
}

// probeOne runs one active probe against node, timing it and feeding the
// outcome through the shared transition logic.
func (c *Checker) probeOne(node string) {
	start := time.Now()
	ok := c.probe(node) == nil
	rtt := time.Since(start)
	if ok {
		c.mu.Lock()
		if n := c.nodes[node]; n != nil {
			n.rtt = rtt
		}
		c.mu.Unlock()
	}
	c.report(node, ok)
}

// AddNode registers a node with the checker at runtime. With probation
// true the node starts ejected and must pass ReadmitAfter consecutive
// probes before the onReadmit callback admits it — the same gate a
// failed node passes through, so a joining replica cannot take traffic
// until it has proven readiness. Reports whether the node was new.
func (c *Checker) AddNode(node string, probation bool) bool {
	c.mu.Lock()
	if c.nodes[node] != nil {
		c.mu.Unlock()
		return false
	}
	c.nodes[node] = &nodeHealth{ejected: probation}
	c.mu.Unlock()
	return true
}

// RemoveNode forgets a node entirely (membership leave/expiry). No
// callback fires — the caller owns the ring edit for removals, while
// ejection keeps its callback because the checker decides it.
func (c *Checker) RemoveNode(node string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.nodes[node] == nil {
		return false
	}
	delete(c.nodes, node)
	return true
}

// ProbeNow fires one asynchronous probe of node, outside the interval
// cadence. Used to accelerate admission of a just-joined replica.
func (c *Checker) ProbeNow(node string) {
	go c.probeOne(node)
}

// ProbeRTT returns node's last successful probe round-trip time, or 0 if
// none has landed yet.
func (c *Checker) ProbeRTT(node string) time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	if n := c.nodes[node]; n != nil {
		return n.rtt
	}
	return 0
}

// MaxProbeRTT returns the slowest last-probe RTT across nodes — a
// conservative cluster-wide latency prior.
func (c *Checker) MaxProbeRTT() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	var max time.Duration
	for _, n := range c.nodes {
		if n.rtt > max {
			max = n.rtt
		}
	}
	return max
}

// ReportFailure feeds one passively observed failure (transport error or
// gateway-class status) into the node's streak.
func (c *Checker) ReportFailure(node string) { c.report(node, false) }

// ReportSuccess feeds one passively observed success into the node's
// streak, resetting its failure count.
func (c *Checker) ReportSuccess(node string) { c.report(node, true) }

// report applies one outcome and fires at most one transition callback.
func (c *Checker) report(node string, ok bool) {
	c.mu.Lock()
	n := c.nodes[node]
	if n == nil {
		c.mu.Unlock()
		return
	}
	var ejected, readmitted bool
	if ok {
		n.fails = 0
		n.oks++
		if n.ejected && n.oks >= c.cfg.ReadmitAfter {
			n.ejected = false
			readmitted = true
		}
	} else {
		n.oks = 0
		if !n.ejected {
			n.fails++
			if n.fails >= c.cfg.EjectAfter {
				n.ejected = true
				n.fails = 0
				ejected = true
			}
		}
	}
	c.mu.Unlock()
	if ejected && c.onEject != nil {
		c.onEject(node)
	}
	if readmitted && c.onReadmit != nil {
		c.onReadmit(node)
	}
}

// Ejected returns the currently ejected nodes, sorted.
func (c *Checker) Ejected() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []string
	for node, n := range c.nodes {
		if n.ejected {
			out = append(out, node)
		}
	}
	sort.Strings(out)
	return out
}
