package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"syscall"
	"testing"
	"time"
)

// TestClusterSmoke exercises the real binaries end to end: it builds
// cmd/nsserve and cmd/nsrouter, starts two replicas and a router in
// front of them, drives 200 mixed characterize requests through the
// router, SIGTERMs one replica halfway, and requires every request to
// come back 200 — the router's drain-aware ejection and failover must
// absorb the kill. Gated behind NSBENCH_CLUSTER_SMOKE=1 because it
// builds binaries and binds real ports; CI runs it as a dedicated step
// and uploads the router log (NSBENCH_ROUTER_LOG) as an artifact.
func TestClusterSmoke(t *testing.T) {
	if os.Getenv("NSBENCH_CLUSTER_SMOKE") == "" {
		t.Skip("set NSBENCH_CLUSTER_SMOKE=1 to run the binary smoke test")
	}
	bin := t.TempDir()
	nsserve := filepath.Join(bin, "nsserve")
	nsrouter := filepath.Join(bin, "nsrouter")
	for target, pkg := range map[string]string{nsserve: "./cmd/nsserve", nsrouter: "./cmd/nsrouter"} {
		cmd := exec.Command("go", "build", "-o", target, pkg)
		cmd.Dir = "../.." // module root; the test runs in internal/cluster
		if out, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("building %s: %v\n%s", pkg, err, out)
		}
	}

	freePort := func() string {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer l.Close()
		return l.Addr().String()
	}
	addrA, addrB, addrR := freePort(), freePort(), freePort()

	logPath := os.Getenv("NSBENCH_ROUTER_LOG")
	if logPath == "" {
		logPath = filepath.Join(bin, "router.log")
	}
	routerLog, err := os.Create(logPath)
	if err != nil {
		t.Fatal(err)
	}
	defer routerLog.Close()

	start := func(name string, stderr *os.File, args ...string) *exec.Cmd {
		cmd := exec.Command(name, args...)
		cmd.Stderr = stderr
		if err := cmd.Start(); err != nil {
			t.Fatalf("starting %s: %v", name, err)
		}
		t.Cleanup(func() {
			cmd.Process.Kill()
			cmd.Wait()
		})
		return cmd
	}
	// -drain-grace keeps a SIGTERMed replica answering (with /readyz 503)
	// long enough for the router's 50ms probes to eject it cleanly.
	repA := start(nsserve, os.Stderr, "-addr", addrA, "-quiet", "-drain-grace", "1s")
	start(nsserve, os.Stderr, "-addr", addrB, "-quiet", "-drain-grace", "1s")
	start(nsrouter, routerLog,
		"-addr", addrR,
		"-replicas", fmt.Sprintf("http://%s,http://%s", addrA, addrB),
		"-probe-interval", "50ms", "-eject-after", "2", "-readmit-after", "2")

	base := "http://" + addrR
	await(t, "router ready", func() bool {
		resp, err := http.Get(base + "/readyz")
		if err != nil {
			return false
		}
		resp.Body.Close()
		return resp.StatusCode == http.StatusOK
	})

	workloads := []string{"LNN", "LTN"}
	devices := []string{"RTX 2080 Ti", "Xavier NX", "Jetson TX2", "Xeon Silver 4114"}
	const total = 200
	for i := 0; i < total; i++ {
		body := fmt.Sprintf(`{"workload":%q,"device":%q}`,
			workloads[i%len(workloads)], devices[(i/len(workloads))%len(devices)])
		resp, err := http.Post(base+"/v1/characterize", "application/json", bytes.NewReader([]byte(body)))
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d (%s): %d, want 200 — failover must absorb the kill", i, body, resp.StatusCode)
		}

		switch i {
		case total/2 - 1:
			// Both replicas healthy and reporting before the kill.
			agg := smokeStats(t, base)
			if agg.LiveNodes != 2 || len(agg.Nodes) != 2 {
				t.Fatalf("pre-kill stats: live=%d nodes=%d, want 2/2", agg.LiveNodes, len(agg.Nodes))
			}
			for _, ns := range agg.Nodes {
				if ns.Err != "" {
					t.Fatalf("pre-kill stats: node %s errored: %s", ns.Node, ns.Err)
				}
			}
			if err := repA.Process.Signal(syscall.SIGTERM); err != nil {
				t.Fatal(err)
			}
		case total / 2:
			// Give the router's probes one drain-grace window to eject the
			// dying replica; requests during the window still succeed.
			time.Sleep(300 * time.Millisecond)
		}
	}

	await(t, "post-kill stats to settle", func() bool {
		return smokeStats(t, base).LiveNodes == 1
	})
	agg := smokeStats(t, base)
	if len(agg.EjectedNodes) != 1 {
		t.Fatalf("post-kill stats: ejected=%v, want exactly the killed replica", agg.EjectedNodes)
	}
	if agg.Cluster.Requests == 0 {
		t.Fatal("post-kill stats: surviving replica reports no requests")
	}
}

func smokeStats(t *testing.T, base string) ClusterStats {
	t.Helper()
	resp, err := http.Get(base + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var agg ClusterStats
	if err := json.NewDecoder(resp.Body).Decode(&agg); err != nil {
		t.Fatal(err)
	}
	return agg
}
