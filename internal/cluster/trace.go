package cluster

import (
	"encoding/json"
	"net/http"
	"net/url"
	"sync"

	"github.com/neurosym/nsbench/internal/trace"
)

// Stitched cross-process traces. Every request carries one X-Request-ID
// across its hops: the router mints (or accepts) it, records its own
// routing spans under it, and forwards it to each replica it tries, where
// the serving layers and the engine record theirs. This file is the
// collection side: fan the ID out to every configured replica, pull back
// each process's RequestTrace slice, and merge the slices into a single
// Chrome trace with one pid per process (trace.WriteStitchedChrome).
//
// The fan-out deliberately queries all known members, not just the
// ring-live ones: the request being investigated may have touched a
// replica that has since been ejected, and an ejected-but-reachable node
// can still answer for its flight recorder. (A member that left outright
// is gone — its recorder went with its process.)

// collectRequestTraces gathers every process's slice of the request's
// timeline: the router's own recorder first (pid 1 in the stitched view),
// then each cluster member in sorted order. Replicas that fail to answer,
// or hold nothing under the ID, contribute no slice.
func (rt *Router) collectRequestTraces(r *http.Request, id string) []trace.RequestTrace {
	nodes := rt.member.Nodes()
	replies := make([]trace.RequestTrace, len(nodes))
	var wg sync.WaitGroup
	for i, node := range nodes {
		wg.Add(1)
		go func(i int, node string) {
			defer wg.Done()
			path := "/v1/trace?request_id=" + url.QueryEscape(id)
			up, err := rt.attempt(r.Context(), node, http.MethodGet, path, nil, requestID(r), 0)
			if err != nil || up.code != http.StatusOK {
				return
			}
			var slice trace.RequestTrace
			if err := json.Unmarshal(up.body, &slice); err != nil {
				return
			}
			replies[i] = slice
		}(i, node)
	}
	wg.Wait()

	var procs []trace.RequestTrace
	if rt.recorder != nil {
		if own := rt.recorder.RequestTrace(id, rt.cfg.NodeName); !own.Empty() {
			procs = append(procs, own)
		}
	}
	for i := range replies {
		if !replies[i].Empty() {
			procs = append(procs, replies[i])
		}
	}
	return procs
}

// handleStitchedTrace serves GET /v1/trace?request_id=<id>: the merged
// cross-process timeline of one past request, as a Perfetto-loadable
// Chrome trace (format=chrome, default) or as the raw per-process slices
// (format=json). 404 when no process holds anything under the ID — the
// flight recorders are rings, so old requests age out.
func (rt *Router) handleStitchedTrace(w http.ResponseWriter, r *http.Request, id string) {
	format := r.URL.Query().Get("format")
	if format == "" {
		format = "chrome"
	}
	if format != "chrome" && format != "json" {
		http.Error(w, "unknown format \""+format+"\" (want chrome or json)", http.StatusBadRequest)
		return
	}
	procs := rt.collectRequestTraces(r, id)
	if len(procs) == 0 {
		http.Error(w, "no recorded spans for request_id "+id, http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if format == "json" {
		b, err := json.Marshal(procs)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Write(b)
		return
	}
	if err := trace.WriteStitchedChrome(w, procs); err != nil && rt.logger != nil {
		rt.logger.Error("stitched trace write failed", "id", id, "err", err)
	}
}
