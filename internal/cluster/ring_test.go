package cluster

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// sampleKeys returns K distinct synthetic canonical-ish keys.
func sampleKeys(k int) []string {
	out := make([]string, k)
	for i := range out {
		out[i] = fmt.Sprintf("workload-%d\x00device-%d", i, i%7)
	}
	return out
}

// assign maps every key to its ring owner.
func assign(r *Ring, keys []string) map[string]string {
	out := make(map[string]string, len(keys))
	for _, k := range keys {
		n, ok := r.Get(k)
		if !ok {
			panic("empty ring in assign")
		}
		out[k] = n
	}
	return out
}

func nodeNames(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("http://replica-%d:8080", i)
	}
	return out
}

func TestRingBasics(t *testing.T) {
	r := NewRing(8)
	if _, ok := r.Get("anything"); ok {
		t.Fatal("empty ring must not assign")
	}
	if got := r.GetN("anything", 3); got != nil {
		t.Fatalf("empty ring GetN = %v, want nil", got)
	}
	r.Add("a")
	r.Add("b")
	r.Add("c")
	r.Add("b") // duplicate add is a no-op
	if r.Len() != 3 {
		t.Fatalf("len = %d, want 3", r.Len())
	}
	if got := len(r.points); got != 3*8 {
		t.Fatalf("points = %d, want 24 (duplicate add must not double b)", got)
	}
	owner, ok := r.Get("some-key")
	if !ok {
		t.Fatal("populated ring must assign")
	}
	// GetN returns distinct nodes in failover order, owner first.
	failover := r.GetN("some-key", 5)
	if len(failover) != 3 {
		t.Fatalf("GetN(5) on 3 nodes = %v, want all 3", failover)
	}
	if failover[0] != owner {
		t.Fatalf("GetN[0] = %s, Get = %s; must agree", failover[0], owner)
	}
	seen := map[string]bool{}
	for _, n := range failover {
		if seen[n] {
			t.Fatalf("GetN returned %s twice: %v", n, failover)
		}
		seen[n] = true
	}
	r.Remove("a")
	r.Remove("a") // duplicate remove is a no-op
	if r.Len() != 2 {
		t.Fatalf("len after remove = %d, want 2", r.Len())
	}
	for _, k := range sampleKeys(100) {
		if n, _ := r.Get(k); n == "a" {
			t.Fatalf("removed node still owns %q", k)
		}
	}
}

// TestRingDeterministicAcrossInsertionOrder is the restart-determinism
// half of the rebalance contract: the same membership must produce the
// same assignment regardless of the order nodes joined (a restarted
// router re-adds its replicas in flag order; an aged router's order
// reflects ejection history).
func TestRingDeterministicAcrossInsertionOrder(t *testing.T) {
	nodes := nodeNames(7)
	keys := sampleKeys(500)
	a := NewRing(32)
	for _, n := range nodes {
		a.Add(n)
	}
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 5; trial++ {
		shuffled := append([]string(nil), nodes...)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		b := NewRing(32)
		for _, n := range shuffled {
			b.Add(n)
		}
		for _, k := range keys {
			na, _ := a.Get(k)
			nb, _ := b.Get(k)
			if na != nb {
				t.Fatalf("trial %d: key %q assigned to %s vs %s under different insertion orders", trial, k, na, nb)
			}
		}
	}
}

// TestRingStableAssignmentGolden pins a handful of concrete assignments.
// The FNV-1a hash has no per-process seed, so these values hold across
// process restarts, architectures, and Go versions — if this test breaks,
// the change just orphaned every deployed replica cache.
func TestRingStableAssignmentGolden(t *testing.T) {
	r := NewRing(16)
	for _, n := range []string{"node-a", "node-b", "node-c"} {
		r.Add(n)
	}
	golden := map[string]string{
		"NVSA\x00RTX 2080 Ti":  "node-b",
		"LNN\x00RTX 2080 Ti":   "node-b",
		"LTN\x00Jetson TX2":    "node-b",
		"PrAE\x00Xavier NX":    "node-c",
		"ZeroC\x00RTX 2080 Ti": "node-c",
	}
	for key, want := range golden {
		if got, _ := r.Get(key); got != want {
			t.Errorf("Get(%q) = %s, want %s (assignment must be restart-stable)", key, got, want)
		}
	}
}

// TestRingRebalanceProperty is the consistent-hashing contract, checked
// with testing/quick over random memberships: adding or removing one of
// N nodes remaps at most c·K/N of K sampled keys. The expectation is
// exactly K/N (the departing/arriving node's share); c=3 absorbs the
// ownership imbalance of finite virtual-node counts.
func TestRingRebalanceProperty(t *testing.T) {
	const K = 1000
	keys := sampleKeys(K)
	prop := func(nNodes uint8, pick uint8) bool {
		n := 2 + int(nNodes)%9 // 2..10 nodes
		nodes := nodeNames(n)
		r := NewRing(0) // DefaultVirtualNodes
		for _, node := range nodes {
			r.Add(node)
		}
		before := assign(r, keys)
		bound := 3 * K / n

		// Removal: only keys owned by the removed node may move.
		removed := nodes[int(pick)%n]
		r.Remove(removed)
		afterRemove := assign(r, keys)
		moved := 0
		for _, k := range keys {
			if before[k] != afterRemove[k] {
				if before[k] != removed {
					t.Errorf("remove(%s) moved key %q from surviving node %s", removed, k, before[k])
					return false
				}
				moved++
			}
		}
		if moved > bound {
			t.Errorf("remove from %d nodes moved %d/%d keys, bound %d", n, moved, K, bound)
			return false
		}

		// Re-adding restores the exact prior assignment (determinism) —
		// and the add direction moves only the keys the new node claims.
		r.Add(removed)
		moved = 0
		for k, owner := range assign(r, keys) {
			if owner != before[k] {
				t.Errorf("re-add of %s did not restore assignment for %q", removed, k)
				return false
			}
		}
		fresh := fmt.Sprintf("http://replica-fresh-%d:8080", pick)
		r.Add(fresh)
		afterAdd := assign(r, keys)
		for _, k := range keys {
			if afterAdd[k] != before[k] {
				if afterAdd[k] != fresh {
					t.Errorf("add(%s) moved key %q to old node %s", fresh, k, afterAdd[k])
					return false
				}
				moved++
			}
		}
		if moved > 3*K/(n+1) {
			t.Errorf("add to %d nodes moved %d/%d keys, bound %d", n, moved, K, 3*K/(n+1))
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestRingGetNChurnProperty extends the rebalance contract to the
// N-distinct-owner order replication routes by: under a leave, a key's
// GetN order minus the departed node is preserved exactly (the ring walk
// skips the departed node's points and nothing else), with at most one
// new owner appended at the tail; symmetrically a join may only insert
// the new node into the order, never permute the survivors. So churn
// invalidates replica placement only where the churned node actually
// owned a slot.
func TestRingGetNChurnProperty(t *testing.T) {
	const K = 500
	keys := sampleKeys(K)

	// without filters node out of an owner order.
	without := func(order []string, node string) []string {
		out := make([]string, 0, len(order))
		for _, n := range order {
			if n != node {
				out = append(out, n)
			}
		}
		return out
	}
	prefixOf := func(short, long []string) bool {
		if len(short) > len(long) {
			return false
		}
		for i := range short {
			if short[i] != long[i] {
				return false
			}
		}
		return true
	}

	prop := func(nNodes, pick, nOwners uint8) bool {
		n := 3 + int(nNodes)%6     // 3..8 nodes
		getN := 2 + int(nOwners)%2 // replication factor 2..3
		nodes := nodeNames(n)
		r := NewRing(0)
		for _, node := range nodes {
			r.Add(node)
		}
		before := make(map[string][]string, K)
		for _, k := range keys {
			before[k] = r.GetN(k, getN)
		}

		// Leave: survivors keep their relative order; only a departed
		// owner's slot is backfilled, at the tail.
		departed := nodes[int(pick)%n]
		r.Remove(departed)
		for _, k := range keys {
			after := r.GetN(k, getN)
			want := without(before[k], departed)
			if !prefixOf(want, after) {
				t.Errorf("remove(%s): key %q order %v -> %v does not preserve survivors %v",
					departed, k, before[k], after, want)
				return false
			}
			if len(after)-len(want) > 1 {
				t.Errorf("remove(%s): key %q gained %d owners, want at most 1 backfill",
					departed, k, len(after)-len(want))
				return false
			}
			// A key whose owner set never included the departed node keeps
			// its order byte-for-byte — churn is invisible to it.
			if len(want) == len(before[k]) && !reflect.DeepEqual(after[:len(want)], before[k]) {
				t.Errorf("remove(%s): unaffected key %q changed order %v -> %v",
					departed, k, before[k], after)
				return false
			}
		}

		// Join (re-add): the churned node may be inserted into an order,
		// but filtering it back out must recover the leave-time order.
		r.Add(departed)
		for _, k := range keys {
			rejoined := r.GetN(k, getN)
			if !reflect.DeepEqual(rejoined, before[k]) {
				t.Errorf("re-add(%s): key %q order %v did not restore %v",
					departed, k, rejoined, before[k])
				return false
			}
		}
		fresh := fmt.Sprintf("http://replica-fresh-%d:8080", pick)
		r.Add(fresh)
		for _, k := range keys {
			after := r.GetN(k, getN)
			kept := without(after, fresh)
			if !prefixOf(kept, before[k]) {
				t.Errorf("add(%s): key %q survivors %v are not a prefix of prior order %v",
					fresh, k, kept, before[k])
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// TestRingBalance sanity-checks that DefaultVirtualNodes keeps ownership
// within a loose factor of fair share — the assumption behind the c=3
// rebalance bound above.
func TestRingBalance(t *testing.T) {
	const K = 5000
	r := NewRing(0)
	nodes := nodeNames(5)
	for _, n := range nodes {
		r.Add(n)
	}
	counts := map[string]int{}
	for _, k := range sampleKeys(K) {
		n, _ := r.Get(k)
		counts[n]++
	}
	fair := K / len(nodes)
	for _, n := range nodes {
		if c := counts[n]; c < fair/3 || c > 3*fair {
			t.Errorf("node %s owns %d of %d keys (fair %d): imbalance beyond 3x", n, c, K, fair)
		}
	}
}
