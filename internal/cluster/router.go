// Package cluster is the horizontal serving tier for nsserve: a
// stdlib-only router (cmd/nsrouter) that fronts N characterization
// replicas and shards requests across them by the same canonical
// workload\x00device key internal/serve caches under.
//
// Sharding by the cache key is the load-bearing decision: every
// canonical request has exactly one owning replica, so each replica's
// LRU and singleflight see all repetitions of the keys it owns, the
// cluster-wide cache capacity is the sum of the replicas' caches (no
// duplicated entries), and adding a replica moves only ~1/N of the key
// space (consistent hashing, Ring).
//
// Around the ring sit the availability mechanisms:
//
//   - active health checking (Checker): each replica's /readyz is probed
//     on an interval; consecutive failures eject it from the ring,
//     consecutive probation successes readmit it. The proxy path feeds
//     its own observed failures into the same streaks, so a dead replica
//     is typically ejected by live traffic between probe rounds.
//   - bounded failover retries: a failed attempt (transport error,
//     502/503/504, or 429) moves to the next distinct ring node after an
//     exponential backoff with jitter, up to MaxAttempts nodes.
//   - opt-in hedged requests: when the primary attempt has not answered
//     within the router's observed latency quantile, a second attempt
//     races it on the next ring node; the first acceptable response wins
//     and the loser's context is cancelled. Hedging trades duplicate
//     work for tail latency, so it is off by default.
//
// The router propagates X-Request-ID into the replicas (landing in their
// flight recorders), aggregates GET /v1/stats across live replicas, and
// publishes its own metrics registry at /metrics: per-node request and
// error counters, hedge fired/won counters, ring-size and ejected-node
// gauges, and routing latency histograms.
package cluster

import (
	"bytes"
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math"
	mrand "math/rand"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/neurosym/nsbench/internal/membership"
	"github.com/neurosym/nsbench/internal/metrics"
	"github.com/neurosym/nsbench/internal/serve"
	"github.com/neurosym/nsbench/internal/slo"
	"github.com/neurosym/nsbench/internal/trace"
)

// Config parameterizes a Router.
type Config struct {
	// Replicas are the nsserve base URLs fronted by the router (e.g.
	// "http://10.0.0.1:8080"), seeded as permanent cluster members;
	// trailing slashes are stripped. May be empty when Membership.Enabled
	// — replicas then join at runtime.
	Replicas []string
	// Membership parameterizes dynamic join/leave (POST /v1/cluster/join
	// heartbeats, TTL expiry). Disabled by default: the cluster is then
	// exactly the static Replicas list.
	Membership membership.Config
	// Replication is the cache fan-fill factor: a characterize miss is
	// pushed to this many distinct ring owners of the key, and reads pick
	// the least-loaded live owner (load-aware, by in-flight count ×
	// observed per-node latency). 0 or 1 selects single-owner sharding.
	Replication int
	// VNodes is the virtual-node count per replica; 0 selects
	// DefaultVirtualNodes.
	VNodes int
	// MaxAttempts bounds how many distinct replicas one request may try
	// (first attempt included); 0 selects 3. The ring yields at most one
	// attempt per live member, so small clusters are naturally capped.
	MaxAttempts int
	// RetryBaseDelay is the backoff before the first retry, doubling per
	// attempt with ±50% jitter; 0 selects 25ms.
	RetryBaseDelay time.Duration
	// RetryMaxDelay caps the backoff; 0 selects 1s.
	RetryMaxDelay time.Duration
	// Hedge enables tail-latency hedging on the proxied characterize
	// path. Off by default: a hedge duplicates work on a second replica.
	Hedge bool
	// HedgeQuantile is the attempt-latency quantile that arms the hedge
	// timer; 0 selects 0.9.
	HedgeQuantile float64
	// HedgeMinDelay floors the hedge delay — before any latency history
	// exists (or if the quantile collapses) hedges fire no earlier than
	// this; 0 selects 20ms.
	HedgeMinDelay time.Duration
	// UpstreamTimeout caps one proxied attempt; 0 selects 90s (above the
	// replicas' default 60s request timeout so their 429/504 answers win
	// the race against the router's own deadline).
	UpstreamTimeout time.Duration
	// Health parameterizes replica probing and ejection.
	Health HealthConfig
	// Metrics, when non-nil, is the registry the router publishes into.
	Metrics *metrics.Registry
	// Logger, when non-nil, receives one line per routed request plus
	// ejection/readmission events. Nil disables logging.
	Logger *slog.Logger
	// RecorderSize is the router flight-recorder capacity in spans; 0
	// selects the trace package default, negative disables the recorder
	// (and with it the stitched /v1/trace?request_id= view's router rows).
	RecorderSize int
	// NodeName identifies the router process in stitched traces (its pid
	// label). Empty selects "nsrouter-<hostname>-<pid>".
	NodeName string
	// SLO parameterizes burn-rate windows and the budget period; the zero
	// value selects the slo package defaults.
	SLO slo.Config
	// SLOAvailabilityTarget is the non-5xx success-ratio objective over
	// all routed responses; 0 selects 0.999.
	SLOAvailabilityTarget float64
	// SLOLatencyTarget is the fraction of routed /v1/characterize
	// responses that must finish within SLOLatencyThreshold; 0 selects
	// 0.95.
	SLOLatencyTarget float64
	// SLOLatencyThreshold is the routed latency objective's cutoff; 0
	// selects 500ms (the replica-side default plus routing overhead).
	SLOLatencyThreshold time.Duration
}

func (c *Config) defaults() {
	if c.MaxAttempts == 0 {
		c.MaxAttempts = 3
	}
	if c.Replication <= 0 {
		c.Replication = 1
	}
	if c.RetryBaseDelay == 0 {
		c.RetryBaseDelay = 25 * time.Millisecond
	}
	if c.RetryMaxDelay == 0 {
		c.RetryMaxDelay = time.Second
	}
	if c.HedgeQuantile == 0 {
		c.HedgeQuantile = 0.9
	}
	if c.HedgeMinDelay == 0 {
		c.HedgeMinDelay = 20 * time.Millisecond
	}
	if c.UpstreamTimeout == 0 {
		c.UpstreamTimeout = 90 * time.Second
	}
	if c.RecorderSize == 0 {
		c.RecorderSize = trace.DefaultRecorderCapacity
	}
	if c.NodeName == "" {
		host, err := os.Hostname()
		if err != nil || host == "" {
			host = "host"
		}
		c.NodeName = fmt.Sprintf("nsrouter-%s-%d", host, os.Getpid())
	}
	c.Health.defaults()
	if c.SLOAvailabilityTarget == 0 {
		c.SLOAvailabilityTarget = 0.999
	}
	if c.SLOLatencyTarget == 0 {
		c.SLOLatencyTarget = 0.95
	}
	if c.SLOLatencyThreshold == 0 {
		c.SLOLatencyThreshold = 500 * time.Millisecond
	}
}

// Router shards requests across nsserve replicas. Construct with New,
// expose via Handler, Close when done.
type Router struct {
	cfg    Config
	ring   *Ring
	health *Checker
	member *membership.Registry
	client *http.Client
	logger *slog.Logger

	// inflight tracks concurrent upstream attempts per node (node →
	// *atomic.Int64) — half of the load score replication reads rank by.
	inflight sync.Map

	reg          *metrics.Registry
	httpReqs     *metrics.CounterVec   // nsrouter_http_requests_total{endpoint,code}
	httpLat      *metrics.HistogramVec // nsrouter_http_request_seconds{endpoint}
	nodeReqs     *metrics.CounterVec   // nsrouter_node_requests_total{node,code}
	nodeErrs     *metrics.CounterVec   // nsrouter_node_errors_total{node}
	retries      *metrics.Counter
	hedgeFired   *metrics.Counter
	hedgeWon     *metrics.Counter
	hedgeOutcome *metrics.CounterVec   // nsrouter_hedge_total{outcome}
	attemptLat   *metrics.Histogram    // successful-attempt latency; arms the hedge timer
	nodeLat      *metrics.HistogramVec // nsrouter_node_attempt_seconds{node} (load scores)
	fillsTotal   *metrics.CounterVec   // nsrouter_replica_fills_total{outcome}
	clusterJoins *metrics.Counter      // ns_cluster_joins_total
	clusterLeave *metrics.Counter      // ns_cluster_leaves_total

	// recorder is the router's flight recorder: proxy attempts, retry
	// backoffs, hedge races, and health transitions, as spans keyed by
	// request ID — the router's slice of a stitched cross-process trace.
	// nil when Config.RecorderSize is negative.
	recorder *trace.Recorder
	// slos tracks the routed availability and latency objectives;
	// sloGood/sloTotal are the availability feed counted in instrument.
	slos     *slo.Set
	sloGood  metrics.Counter
	sloTotal metrics.Counter

	exploreSweeps *metrics.Counter // ns_explore_sweeps_total (router-level fan-outs)
	exploreShards *metrics.Counter // ns_explore_shards_total (shard streams completed)

	reqNonce string
	reqSeq   atomic.Uint64

	closeOnce sync.Once
}

// New builds a router over cfg.Replicas, starts its health checker, and
// returns it ready to serve.
func New(cfg Config) (*Router, error) {
	if len(cfg.Replicas) == 0 && !cfg.Membership.Enabled {
		return nil, errors.New("cluster: at least one replica required (or enable dynamic membership)")
	}
	cfg.defaults()
	reg := cfg.Metrics
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	rt := &Router{
		cfg:    cfg,
		ring:   NewRing(cfg.VNodes),
		client: &http.Client{}, // per-attempt deadlines come from contexts
		logger: cfg.Logger,
		reg:    reg,
		httpReqs: reg.CounterVec("nsrouter_http_requests_total",
			"Routed HTTP requests by endpoint and status code.", "endpoint", "code"),
		httpLat: reg.HistogramVec("nsrouter_http_request_seconds",
			"Routing latency by endpoint, upstream time included.", metrics.LatencyBuckets(), "endpoint"),
		nodeReqs: reg.CounterVec("nsrouter_node_requests_total",
			"Upstream responses by replica and status code.", "node", "code"),
		nodeErrs: reg.CounterVec("nsrouter_node_errors_total",
			"Upstream transport errors by replica.", "node"),
		retries: reg.Counter("nsrouter_retries_total",
			"Failover attempts beyond each request's first."),
		hedgeFired: reg.Counter("nsrouter_hedges_fired_total",
			"Hedge attempts launched after the latency-quantile delay."),
		hedgeWon: reg.Counter("nsrouter_hedges_won_total",
			"Hedge attempts that answered before the primary."),
		hedgeOutcome: reg.CounterVec("nsrouter_hedge_total",
			"Resolved hedge races by outcome: primary won, hedge won, or both failed.",
			"outcome"),
		attemptLat: reg.Histogram("nsrouter_attempt_seconds",
			"Latency of successful upstream attempts (feeds the hedge delay).", metrics.LatencyBuckets()),
		nodeLat: reg.HistogramVec("nsrouter_node_attempt_seconds",
			"Latency of successful upstream attempts by replica (feeds load-aware routing).",
			metrics.LatencyBuckets(), "node"),
		fillsTotal: reg.CounterVec("nsrouter_replica_fills_total",
			"Replica cache fills fanned out for replicated keys, by outcome.", "outcome"),
		clusterJoins: reg.Counter("ns_cluster_joins_total",
			"Replicas that joined the cluster (new registrations, not heartbeats)."),
		clusterLeave: reg.Counter("ns_cluster_leaves_total",
			"Replicas that left the cluster (explicit leaves and TTL expiries)."),
		exploreSweeps: reg.Counter("ns_explore_sweeps_total",
			"Design-space sweeps fanned out across the cluster."),
		exploreShards: reg.Counter("ns_explore_shards_total",
			"Sweep shard streams completed by replicas."),
		reqNonce: newNonce(),
	}
	if cfg.RecorderSize > 0 {
		rt.recorder = trace.NewRecorder(cfg.RecorderSize)
	}
	nodes := make([]string, len(cfg.Replicas))
	for i, rep := range cfg.Replicas {
		nodes[i] = strings.TrimRight(rep, "/")
		rt.ring.Add(nodes[i])
	}
	rt.health = NewChecker(cfg.Health, nodes, nil,
		func(node string) {
			rt.ring.Remove(node)
			// Health transitions live under the reserved "_health" ID:
			// GET /v1/trace?request_id=_health shows ejection history.
			rt.recordRouterSpan(healthTraceID, "health.eject("+node+")", time.Now())
			if rt.logger != nil {
				rt.logger.Warn("replica ejected", "node", node)
			}
		},
		func(node string) {
			rt.ring.Add(node)
			rt.recordRouterSpan(healthTraceID, "health.readmit("+node+")", time.Now())
			if rt.logger != nil {
				rt.logger.Info("replica readmitted", "node", node)
			}
		})
	// Membership drives the ring through the checker: a joining replica is
	// registered on probation (ejected) and enters the ring only via the
	// checker's readmit path after ReadmitAfter probe successes — the same
	// gate a recovering replica passes — so a join can never route traffic
	// to an unproven node. A leave (explicit or TTL expiry) removes the
	// node from both checker and ring immediately.
	rt.member = membership.NewRegistry(cfg.Membership,
		func(node string) {
			rt.clusterJoins.Inc()
			if rt.health.AddNode(node, true) {
				rt.health.ProbeNow(node)
			}
			rt.recordRouterSpan(membershipTraceID, "membership.join("+node+")", time.Now())
			if rt.logger != nil {
				rt.logger.Info("replica joined (probation)", "node", node)
			}
		},
		func(node, reason string) {
			rt.clusterLeave.Inc()
			rt.health.RemoveNode(node)
			rt.ring.Remove(node)
			rt.recordRouterSpan(membershipTraceID, "membership.leave("+node+" "+reason+")", time.Now())
			if rt.logger != nil {
				rt.logger.Info("replica left", "node", node, "reason", reason)
			}
		})
	rt.member.SeedStatic(nodes)
	reg.GaugeFunc("nsrouter_ring_nodes", "Live replicas currently in the hash ring.",
		func() float64 { return float64(rt.ring.Len()) })
	reg.GaugeFunc("nsrouter_ejected_nodes", "Replicas ejected by the health checker.",
		func() float64 { return float64(len(rt.health.Ejected())) })
	reg.GaugeFunc("ns_cluster_members", "Current cluster membership (static + dynamic).",
		func() float64 { return float64(rt.member.Len()) })
	metrics.NewGoCollector(reg)
	metrics.RegisterBuildInfo(reg)
	rt.slos = slo.NewSet(cfg.SLO)
	if err := rt.slos.Add(slo.Objective{
		Name:        "availability",
		Description: "Non-5xx responses across all routed endpoints (health/readiness probes excluded).",
		Target:      cfg.SLOAvailabilityTarget,
		Source:      slo.FromCounters(rt.sloGood.Value, rt.sloTotal.Value),
	}); err != nil {
		return nil, err
	}
	if err := rt.slos.Add(slo.Objective{
		Name: "characterize_latency",
		Description: fmt.Sprintf("Routed /v1/characterize responses within %s (histogram-bucket resolution).",
			cfg.SLOLatencyThreshold),
		Target: cfg.SLOLatencyTarget,
		Source: slo.FromHistogram(rt.httpLat.With("/v1/characterize"), cfg.SLOLatencyThreshold.Seconds()),
	}); err != nil {
		return nil, err
	}
	rt.slos.Register(reg)
	rt.slos.Start()
	rt.health.Start()
	if cfg.Membership.Enabled {
		rt.member.Start()
	}
	return rt, nil
}

// healthTraceID is the reserved flight-recorder ID health transitions are
// recorded under (they belong to no single request).
const healthTraceID = "_health"

// membershipTraceID is the reserved flight-recorder ID join/leave events
// are recorded under: GET /v1/trace?request_id=_membership replays the
// cluster's churn history.
const membershipTraceID = "_membership"

// recordRouterSpan records one routing-layer range (kind "router") from
// start to now on lane 0 under id. No-op with the recorder disabled.
func (rt *Router) recordRouterSpan(id, name string, start time.Time) {
	rt.recordRouterSpanLane(id, name, 0, start)
}

// recordRouterSpanLane is recordRouterSpan on an explicit worker lane —
// hedge attempts use lane 1 so the race renders as two parallel tracks.
func (rt *Router) recordRouterSpanLane(id, name string, lane int, start time.Time) {
	if rt.recorder == nil {
		return
	}
	rt.recorder.RecordSpan(id, trace.SpanAt(name, "router", lane, start, time.Now()))
}

// Metrics returns the router's registry.
func (rt *Router) Metrics() *metrics.Registry { return rt.reg }

// Close stops the health checker and the SLO sampler and drops idle
// upstream connections.
func (rt *Router) Close() {
	rt.closeOnce.Do(func() {
		rt.member.Close()
		rt.health.Close()
		rt.slos.Close()
		rt.client.CloseIdleConnections()
	})
}

// Handler returns the router's route table, mirroring the replica API so
// clients point at the router unchanged.
func (rt *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/characterize", rt.instrument("/v1/characterize", rt.handleCharacterize))
	mux.HandleFunc("/v1/explore", rt.instrument("/v1/explore", rt.handleExplore))
	mux.HandleFunc("/v1/workloads", rt.instrument("/v1/workloads", rt.handleWorkloads))
	mux.HandleFunc("/v1/trace", rt.instrument("/v1/trace", rt.handleTrace))
	mux.HandleFunc("/v1/stats", rt.instrument("/v1/stats", rt.handleStats))
	mux.HandleFunc("/v1/slo", rt.instrument("/v1/slo", rt.handleSLO))
	mux.HandleFunc("/v1/cluster/join", rt.instrument("/v1/cluster/join", rt.handleClusterJoin))
	mux.HandleFunc("/v1/cluster/leave", rt.instrument("/v1/cluster/leave", rt.handleClusterLeave))
	mux.HandleFunc("/v1/cluster/members", rt.instrument("/v1/cluster/members", rt.handleClusterMembers))
	mux.HandleFunc("/metrics", rt.instrument("/metrics", rt.handleMetrics))
	mux.HandleFunc("/healthz", rt.instrument("/healthz", rt.handleHealthz))
	mux.HandleFunc("/readyz", rt.instrument("/readyz", rt.handleReadyz))
	return mux
}

// newNonce returns a short random hex tag for request-ID generation.
func newNonce() string {
	var b [4]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "static"
	}
	return hex.EncodeToString(b[:])
}

type ctxKey int

const ctxKeyRequestID ctxKey = iota

// requestID returns the ID instrument assigned to (or accepted from) r.
func requestID(r *http.Request) string {
	id, _ := r.Context().Value(ctxKeyRequestID).(string)
	return id
}

// instrument wraps h with per-endpoint request/latency metrics and
// request-ID handling: an inbound X-Request-ID is kept (and forwarded to
// the replica that serves the request, landing in its flight recorder),
// otherwise one is minted here — either way the ID is echoed on the
// response and ties the router's log line to the replica's.
func (rt *Router) instrument(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	lat := rt.httpLat.With(endpoint)
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		id := r.Header.Get("X-Request-ID")
		if id == "" {
			id = fmt.Sprintf("nsr-%s-%d", rt.reqNonce, rt.reqSeq.Add(1))
		}
		w.Header().Set("X-Request-ID", id)
		r = r.WithContext(context.WithValue(r.Context(), ctxKeyRequestID, id))
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		h(sw, r)
		dur := time.Since(start)
		lat.ObserveSeconds(dur.Nanoseconds())
		rt.httpReqs.With(endpoint, strconv.Itoa(sw.code)).Inc()
		// Availability SLO feed: every routed response counts, 5xx bad —
		// except the probe endpoints: /readyz answers 503 by design while
		// the ring is empty (startup, every replica ejected), and that
		// honest "not ready" must not burn the availability budget.
		if endpoint != "/healthz" && endpoint != "/readyz" {
			rt.sloTotal.Inc()
			if sw.code < 500 {
				rt.sloGood.Inc()
			}
		}
		if rt.logger != nil {
			rt.logger.Info("route",
				"method", r.Method, "path", r.URL.Path,
				"status", sw.code, "dur", dur, "id", id)
		}
	}
}

// statusWriter captures the response status for the request counter.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

// Flush forwards to the underlying writer so the fanned-out /v1/explore
// stream reaches the client incrementally through the instrumentation.
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// allowMethods gates r to the listed methods (405 + Allow otherwise).
func allowMethods(w http.ResponseWriter, r *http.Request, methods ...string) bool {
	for _, m := range methods {
		if r.Method == m {
			return true
		}
	}
	w.Header().Set("Allow", strings.Join(methods, ", "))
	http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
	return false
}

// maxBodyBytes bounds request and upstream bodies. Reports are tens of
// kilobytes; a megabyte of headroom keeps the copy loops bounded without
// ever truncating a legitimate payload.
const maxBodyBytes = 1 << 20

// upstream is one replica response, fully buffered so it can be replayed
// to the client after the retry/hedge race settles.
type upstream struct {
	node   string
	code   int
	header http.Header
	body   []byte
}

// errNoReplicas distinguishes "every replica is ejected" (503, come back
// later) from "every attempt failed" (502).
var errNoReplicas = errors.New("no live replicas in the ring")

// retryable reports whether an upstream status may be retried on the
// next ring node: gateway-class statuses mean the replica cannot serve
// right now, and 429 means its queue is full — characterizations are
// deterministic, so the next replica can compute the same report.
func retryable(code int) bool {
	switch code {
	case http.StatusTooManyRequests, http.StatusBadGateway,
		http.StatusServiceUnavailable, http.StatusGatewayTimeout:
		return true
	}
	return false
}

// attempt proxies one request to one replica and buffers the response.
// Outcomes feed the health checker: transport errors and gateway-class
// statuses extend the node's failure streak (429 does not — backpressure
// is load, not ill health), anything else resets it. One exception: an
// attempt reaped by its own router's cancellation (a lost hedge race, or
// the client hanging up) is the router's doing, not the replica's — it
// records a span tagged canceled and feeds no failure streak, so hedging
// can never eject a healthy node. Every attempt leaves a span in the
// flight recorder under id on the given worker lane.
func (rt *Router) attempt(ctx context.Context, node, method, path string, body []byte, id string, lane int) (*upstream, error) {
	inflight := rt.inflightCounter(node)
	inflight.Add(1)
	defer inflight.Add(-1)
	actx, cancel := context.WithTimeout(ctx, rt.cfg.UpstreamTimeout)
	defer cancel()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(actx, method, node+path, rd)
	if err != nil {
		return nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	req.Header.Set("X-Request-ID", id)
	start := time.Now()
	resp, err := rt.client.Do(req)
	if err != nil {
		if ctx.Err() == context.Canceled {
			rt.recordRouterSpanLane(id, "proxy("+node+") canceled", lane, start)
			return nil, fmt.Errorf("%s: %w", node, err)
		}
		rt.nodeErrs.With(node).Inc()
		rt.health.ReportFailure(node)
		rt.recordRouterSpanLane(id, "proxy("+node+") error", lane, start)
		return nil, fmt.Errorf("%s: %w", node, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(io.LimitReader(resp.Body, maxBodyBytes))
	if err != nil {
		if ctx.Err() == context.Canceled {
			rt.recordRouterSpanLane(id, "proxy("+node+") canceled", lane, start)
			return nil, fmt.Errorf("%s: reading body: %w", node, err)
		}
		rt.nodeErrs.With(node).Inc()
		rt.health.ReportFailure(node)
		rt.recordRouterSpanLane(id, "proxy("+node+") error", lane, start)
		return nil, fmt.Errorf("%s: reading body: %w", node, err)
	}
	rt.recordRouterSpanLane(id, fmt.Sprintf("proxy(%s) %d", node, resp.StatusCode), lane, start)
	rt.nodeReqs.With(node, strconv.Itoa(resp.StatusCode)).Inc()
	switch {
	case resp.StatusCode == http.StatusBadGateway,
		resp.StatusCode == http.StatusServiceUnavailable,
		resp.StatusCode == http.StatusGatewayTimeout:
		rt.health.ReportFailure(node)
	case resp.StatusCode == http.StatusTooManyRequests:
		// No health signal either way: a full queue is a healthy node.
	default:
		rt.health.ReportSuccess(node)
		rt.attemptLat.ObserveSeconds(time.Since(start).Nanoseconds())
		rt.nodeLat.With(node).ObserveSeconds(time.Since(start).Nanoseconds())
	}
	return &upstream{node: node, code: resp.StatusCode, header: resp.Header, body: b}, nil
}

// backoff returns the pre-retry delay for attempt i (1-based): base
// doubling per step, capped, with ±50% jitter so synchronized clients
// don't re-stampede a recovering replica.
func (rt *Router) backoff(i int) time.Duration {
	d := rt.cfg.RetryBaseDelay << (i - 1)
	if d > rt.cfg.RetryMaxDelay || d <= 0 {
		d = rt.cfg.RetryMaxDelay
	}
	half := int64(d) / 2
	return time.Duration(half + mrand.Int63n(half+1))
}

// hedgeSeedMinSamples is the attempt-latency sample count below which the
// quantile is too noisy to arm the hedge timer: with a near-empty
// histogram the quantile collapses to the lowest occupied bucket and
// every early request hedges at the floor, doubling load exactly when
// the router knows least. Until the histogram matures, the delay is
// seeded from the health prober's measured RTT instead.
const hedgeSeedMinSamples = 32

// hedgeProbeRTTFactor scales the probe-RTT seed: a readiness probe is a
// trivial handler, so a real characterization that hasn't answered within
// a few probe round-trips is not yet suspicious.
const hedgeProbeRTTFactor = 4

// hedgeDelay is how long the primary attempt may run before a hedge is
// launched: the configured quantile of observed successful-attempt
// latency once ≥hedgeSeedMinSamples exist, else a multiple of the
// slowest health-probe RTT — both floored at HedgeMinDelay (which also
// covers the probes-haven't-landed case).
func (rt *Router) hedgeDelay() time.Duration {
	d := rt.cfg.HedgeMinDelay
	if rt.attemptLat.Count() < hedgeSeedMinSamples {
		if seed := hedgeProbeRTTFactor * rt.health.MaxProbeRTT(); seed > d {
			d = seed
		}
		return d
	}
	if q := rt.attemptLat.Quantile(rt.cfg.HedgeQuantile); !math.IsNaN(q) {
		if lat := time.Duration(q * float64(time.Second)); lat > d {
			d = lat
		}
	}
	return d
}

// inflightCounter returns node's concurrent-attempt counter, creating it
// on first use.
func (rt *Router) inflightCounter(node string) *atomic.Int64 {
	if c, ok := rt.inflight.Load(node); ok {
		return c.(*atomic.Int64)
	}
	c, _ := rt.inflight.LoadOrStore(node, new(atomic.Int64))
	return c.(*atomic.Int64)
}

// loadScore ranks a replica for read placement: in-flight attempts
// weighted by observed mean attempt latency (a Little's-law queue-time
// estimate — two queued requests on a fast node beat one on a slow one).
// A replica with no traffic history falls back to its health-probe RTT,
// so a fresh joiner competes on its measured network proximity rather
// than an arbitrary prior.
func (rt *Router) loadScore(node string) float64 {
	mean := 0.05 // conservative default before any signal exists
	if h := rt.nodeLat.With(node); h.Count() > 0 {
		mean = h.Sum() / float64(h.Count())
	} else if rtt := rt.health.ProbeRTT(node); rtt > 0 {
		mean = rtt.Seconds()
	}
	return float64(rt.inflightCounter(node).Load()+1) * mean
}

// routeOrder returns the attempt order for key. With Replication 1 it is
// the ring's deterministic failover order. With Replication > 1 the first
// R distinct owners all hold the key's report warm (fills fan to them),
// so any of them can serve a read from cache — the order starts with the
// least-loaded owner and keeps the remaining owners (then non-owner
// failover nodes) behind it, truncated to MaxAttempts.
func (rt *Router) routeOrder(key string) []string {
	want := rt.cfg.MaxAttempts
	if rt.cfg.Replication > want {
		want = rt.cfg.Replication
	}
	nodes := rt.ring.GetN(key, want)
	if k := min(rt.cfg.Replication, len(nodes)); k > 1 {
		owners := nodes[:k]
		sort.SliceStable(owners, func(i, j int) bool {
			return rt.loadScore(owners[i]) < rt.loadScore(owners[j])
		})
	}
	if len(nodes) > rt.cfg.MaxAttempts {
		nodes = nodes[:rt.cfg.MaxAttempts]
	}
	return nodes
}

// forward routes one request along key's failover node list: primary
// first (hedged when enabled), then each next distinct ring node after a
// jittered exponential backoff. It returns the first acceptable response,
// or the last retryable one (so e.g. a terminal 429's Retry-After reaches
// the client), or an error when every attempt failed at the transport.
func (rt *Router) forward(ctx context.Context, key, method, path string, body []byte, id string, hedge bool) (*upstream, error) {
	nodes := rt.routeOrder(key)
	if len(nodes) == 0 {
		return nil, errNoReplicas
	}
	var last *upstream
	var lastErr error
	for i := 0; i < len(nodes); i++ {
		if i > 0 {
			rt.retries.Inc()
			backoffStart := time.Now()
			select {
			case <-time.After(rt.backoff(i)):
				rt.recordRouterSpan(id, fmt.Sprintf("retry.backoff(%d)", i), backoffStart)
			case <-ctx.Done():
				return last, ctx.Err()
			}
		}
		var up *upstream
		var err error
		if i == 0 && hedge && rt.cfg.Hedge && len(nodes) > 1 {
			up, err = rt.hedged(ctx, nodes[0], nodes[1], method, path, body, id)
		} else {
			up, err = rt.attempt(ctx, nodes[i], method, path, body, id, 0)
		}
		if err == nil && !retryable(up.code) {
			return up, nil
		}
		if up != nil {
			last = up
		}
		if err != nil {
			lastErr = err
			if rt.logger != nil {
				rt.logger.Warn("attempt failed", "node", nodes[i], "id", id, "err", err)
			}
		}
	}
	if last != nil {
		return last, nil
	}
	return nil, lastErr
}

// hedged races the primary attempt against a delayed hedge on the next
// ring node. The first acceptable response wins and the shared context
// cancel reaps the loser's in-flight request; if the primary fails before
// the hedge timer fires, the failure returns immediately so forward's
// retry loop (with its backoff) takes over.
func (rt *Router) hedged(ctx context.Context, primary, backup, method, path string, body []byte, id string) (*upstream, error) {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel() // reaps whichever attempt lost
	type res struct {
		up    *upstream
		err   error
		hedge bool
	}
	ch := make(chan res, 2)
	launch := func(node string, hedge bool, lane int) {
		go func() {
			up, err := rt.attempt(ctx, node, method, path, body, id, lane)
			ch <- res{up, err, hedge}
		}()
	}
	launch(primary, false, 0)
	timer := time.NewTimer(rt.hedgeDelay())
	defer timer.Stop()
	outstanding, launched := 1, false
	var fallback res
	var failed bool
	for {
		select {
		case <-timer.C:
			if !launched {
				launched = true
				outstanding++
				rt.hedgeFired.Inc()
				// Lane 1: the race renders as two parallel tracks in the
				// stitched timeline, the loser's span tagged canceled.
				launch(backup, true, 1)
			}
		case r := <-ch:
			outstanding--
			if r.err == nil && !retryable(r.up.code) {
				if launched {
					if r.hedge {
						rt.hedgeWon.Inc()
						rt.hedgeOutcome.With("hedge").Inc()
					} else {
						rt.hedgeOutcome.With("primary").Inc()
					}
				}
				return r.up, r.err
			}
			if !failed {
				failed, fallback = true, r
			}
			if !launched {
				// Primary failed fast: no point hedging a known-bad key
				// placement — fail over with backoff instead.
				return r.up, r.err
			}
			if outstanding == 0 {
				rt.hedgeOutcome.With("both_failed").Inc()
				return fallback.up, fallback.err
			}
		}
	}
}

// writeUpstream replays a buffered replica response to the client,
// preserving the payload bytes exactly and the headers that carry
// serving semantics (cache disposition, backpressure hints). The
// X-NSRouter-Node header names the replica that answered.
func writeUpstream(w http.ResponseWriter, up *upstream) {
	for _, h := range []string{"Content-Type", "X-NSServe-Cache", "Retry-After"} {
		if v := up.header.Get(h); v != "" {
			w.Header().Set(h, v)
		}
	}
	w.Header().Set("X-NSRouter-Node", up.node)
	w.WriteHeader(up.code)
	w.Write(up.body)
}

// statusClientClosedRequest mirrors nginx's 499 (and the replicas'
// statusClientClosed): the client disconnected while the route was in
// flight, so nobody will read the response.
const statusClientClosedRequest = 499

// routeError maps a forwarding failure to a client status. A forward cut
// short by the *client's* departure is not a replica failure: it answers
// 499, keeping abandoned requests out of the availability error budget
// (a 5xx here would charge the server for a response nobody received).
// Both real error shapes are retryable from the client's side, so both
// carry Retry-After: an empty ring heals on the health checker's probe
// cadence, and a transport-level wipeout is worth one client backoff
// before retrying.
func (rt *Router) routeError(w http.ResponseWriter, r *http.Request, err error) {
	if r.Context().Err() == context.Canceled {
		w.WriteHeader(statusClientClosedRequest)
		return
	}
	if errors.Is(err, errNoReplicas) {
		w.Header().Set("Retry-After", retryAfterSeconds(rt.cfg.Health.Interval))
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Retry-After", retryAfterSeconds(rt.cfg.RetryMaxDelay))
	http.Error(w, "all replicas failed: "+err.Error(), http.StatusBadGateway)
}

// retryAfterSeconds renders d as a whole-second Retry-After value,
// rounding up so the client never comes back early.
func retryAfterSeconds(d time.Duration) string {
	s := int64(math.Ceil(d.Seconds()))
	if s < 1 {
		s = 1
	}
	return strconv.FormatInt(s, 10)
}

// handleCharacterize is the routed hot path: canonicalize exactly as the
// replicas do, shard by the canonical cache key, forward with failover
// (and hedging when enabled). The canonical form is what gets forwarded,
// so replicas parse one spelling per key no matter what clients sent.
func (rt *Router) handleCharacterize(w http.ResponseWriter, r *http.Request) {
	if !allowMethods(w, r, http.MethodPost) {
		return
	}
	// Root span: the routed request's full extent — every per-hop span
	// (proxy attempts, backoffs) nests inside it on the stitched timeline.
	routeStart := time.Now()
	id := requestID(r)
	defer func() { rt.recordRouterSpan(id, "route.characterize", routeStart) }()
	raw, err := io.ReadAll(io.LimitReader(r.Body, maxBodyBytes))
	if err != nil {
		http.Error(w, "reading body: "+err.Error(), http.StatusBadRequest)
		return
	}
	var req serve.Request
	if err := json.Unmarshal(raw, &req); err != nil {
		http.Error(w, "bad request body: "+err.Error(), http.StatusBadRequest)
		return
	}
	canon, key, err := serve.Canonicalize(req)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	body, err := json.Marshal(canon)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	up, err := rt.forward(r.Context(), key, http.MethodPost, "/v1/characterize", body, requestID(r), true)
	if err != nil {
		rt.routeError(w, r, err)
		return
	}
	// Replication: a freshly computed report (miss, or a joined flight's
	// copy) is pushed to the key's other ring owners so any of them can
	// serve the next read from cache. Fired asynchronously — the fill is
	// an optimization, never on the client's critical path.
	if rt.cfg.Replication > 1 && up.code == http.StatusOK {
		switch up.header.Get("X-NSServe-Cache") {
		case "miss", "join":
			rt.fanFills(key, canon, up, id)
		}
	}
	writeUpstream(w, up)
}

// fanFills pushes up's report bytes to key's other owners (the first
// Replication distinct ring nodes), skipping the replica that answered.
// The bytes are forwarded verbatim, so every owner's cache entry — and
// therefore every future cache hit — stays byte-identical.
func (rt *Router) fanFills(key string, canon serve.Request, up *upstream, id string) {
	for _, node := range rt.ring.GetN(key, rt.cfg.Replication) {
		if node == up.node {
			continue
		}
		go rt.fill(node, canon, up.body, id)
	}
}

// fill installs one already-computed report into node's cache via POST
// /v1/cache/fill, with its own deadline (the client's context is long
// gone by design).
func (rt *Router) fill(node string, canon serve.Request, report []byte, id string) {
	start := time.Now()
	body, err := json.Marshal(serve.FillRequest{Request: canon, Report: report})
	if err != nil {
		rt.fillsTotal.With("error").Inc()
		return
	}
	ctx, cancel := context.WithTimeout(context.Background(), rt.cfg.UpstreamTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, node+"/v1/cache/fill", bytes.NewReader(body))
	if err != nil {
		rt.fillsTotal.With("error").Inc()
		return
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Request-ID", id)
	outcome := "ok"
	resp, err := rt.client.Do(req)
	if err != nil {
		outcome = "error"
	} else {
		io.Copy(io.Discard, io.LimitReader(resp.Body, maxBodyBytes))
		resp.Body.Close()
		if resp.StatusCode != http.StatusNoContent {
			outcome = "rejected"
		}
	}
	rt.fillsTotal.With(outcome).Inc()
	// Lane 2 keeps fills visually apart from the proxy race in the
	// stitched timeline.
	rt.recordRouterSpanLane(id, "fill("+node+") "+outcome, 2, start)
}

// handleSLO reports the router's objectives: error budgets, windowed
// burn rates, and alert state.
func (rt *Router) handleSLO(w http.ResponseWriter, r *http.Request) {
	if !allowMethods(w, r, http.MethodGet) {
		return
	}
	b, err := json.Marshal(rt.slos.Report())
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(b)
}

// handleTrace routes the debug timeline endpoint by the same canonical
// key as characterize, so the replica that owns (and has cached) a key
// also serves its traces. With request_id= it instead assembles the
// stitched cross-process view of one past request (see trace.go).
func (rt *Router) handleTrace(w http.ResponseWriter, r *http.Request) {
	if !allowMethods(w, r, http.MethodGet) {
		return
	}
	q := r.URL.Query()
	if id := q.Get("request_id"); id != "" {
		rt.handleStitchedTrace(w, r, id)
		return
	}
	_, key, err := serve.Canonicalize(serve.Request{Workload: q.Get("workload"), Device: q.Get("device")})
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	path := "/v1/trace"
	if r.URL.RawQuery != "" {
		path += "?" + r.URL.RawQuery
	}
	up, err := rt.forward(r.Context(), key, http.MethodGet, path, nil, requestID(r), false)
	if err != nil {
		rt.routeError(w, r, err)
		return
	}
	writeUpstream(w, up)
}

// handleWorkloads serves the registry listing from any live replica (the
// listing is identical everywhere; a fixed routing key just keeps it on
// one node's workloadsOnce path).
func (rt *Router) handleWorkloads(w http.ResponseWriter, r *http.Request) {
	if !allowMethods(w, r, http.MethodGet) {
		return
	}
	up, err := rt.forward(r.Context(), "\x00workloads", http.MethodGet, "/v1/workloads", nil, requestID(r), false)
	if err != nil {
		rt.routeError(w, r, err)
		return
	}
	writeUpstream(w, up)
}

// handleMetrics exposes the router's own registry (replica metrics are
// scraped from the replicas; aggregating text expositions would lose
// label identity).
func (rt *Router) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if !allowMethods(w, r, http.MethodGet, http.MethodHead) {
		return
	}
	w.Header().Set("Content-Type", metrics.PromContentType)
	if r.Method == http.MethodHead {
		return
	}
	rt.reg.WriteProm(w)
}

// handleHealthz is the router's liveness probe.
func (rt *Router) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if !allowMethods(w, r, http.MethodGet, http.MethodHead) {
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	if r.Method != http.MethodHead {
		fmt.Fprintln(w, "ok")
	}
}

// handleReadyz reports readiness: the router can serve only while at
// least one replica is live in the ring.
func (rt *Router) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if !allowMethods(w, r, http.MethodGet, http.MethodHead) {
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if rt.ring.Len() == 0 {
		w.WriteHeader(http.StatusServiceUnavailable)
		if r.Method != http.MethodHead {
			fmt.Fprintln(w, "no live replicas")
		}
		return
	}
	w.WriteHeader(http.StatusOK)
	if r.Method != http.MethodHead {
		fmt.Fprintln(w, "ready")
	}
}
