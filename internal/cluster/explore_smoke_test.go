package cluster

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"testing"

	"github.com/neurosym/nsbench/internal/dse"
)

// TestExploreSmoke exercises the design-space-exploration path with real
// binaries end to end: it builds cmd/nsserve, cmd/nsrouter, cmd/nsexplore,
// and cmd/nsbench, starts two replicas behind a router, drives the stock
// 256-point NVSA sweep through the router with the nsexplore CLI, and
// requires full coverage (zero failed points), a non-empty Pareto front
// byte-identical to a single-replica sweep, and a trace-once/project-many
// re-projection speedup of at least 50x in the nsbench -explore artifact.
// Gated behind NSEXPLORE_SMOKE=1 because it builds binaries, binds real
// ports, and characterizes NVSA (~1s per replica); CI runs it as a
// dedicated step and uploads BENCH_explore.json (NSEXPLORE_ARTIFACT) as
// an artifact.
func TestExploreSmoke(t *testing.T) {
	if os.Getenv("NSEXPLORE_SMOKE") == "" {
		t.Skip("set NSEXPLORE_SMOKE=1 to run the explore binary smoke test")
	}
	bin := t.TempDir()
	nsserve := filepath.Join(bin, "nsserve")
	nsrouter := filepath.Join(bin, "nsrouter")
	nsexplore := filepath.Join(bin, "nsexplore")
	nsbench := filepath.Join(bin, "nsbench")
	for target, pkg := range map[string]string{
		nsserve:   "./cmd/nsserve",
		nsrouter:  "./cmd/nsrouter",
		nsexplore: "./cmd/nsexplore",
		nsbench:   "./cmd/nsbench",
	} {
		cmd := exec.Command("go", "build", "-o", target, pkg)
		cmd.Dir = "../.." // module root; the test runs in internal/cluster
		if out, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("building %s: %v\n%s", pkg, err, out)
		}
	}

	freePort := func() string {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer l.Close()
		return l.Addr().String()
	}
	addrA, addrB, addrR := freePort(), freePort(), freePort()

	start := func(name string, args ...string) {
		cmd := exec.Command(name, args...)
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			t.Fatalf("starting %s: %v", name, err)
		}
		t.Cleanup(func() {
			cmd.Process.Kill()
			cmd.Wait()
		})
	}
	start(nsserve, "-addr", addrA, "-quiet")
	start(nsserve, "-addr", addrB, "-quiet")
	start(nsrouter,
		"-addr", addrR,
		"-replicas", fmt.Sprintf("http://%s,http://%s", addrA, addrB),
		"-probe-interval", "50ms")

	for name, addr := range map[string]string{"replica A": addrA, "replica B": addrB, "router": addrR} {
		addr := addr
		await(t, name+" ready", func() bool {
			resp, err := http.Get("http://" + addr + "/readyz")
			if err != nil {
				return false
			}
			resp.Body.Close()
			return resp.StatusCode == http.StatusOK
		})
	}

	sweep := func(server, out string) dse.Artifact {
		t.Helper()
		cmd := exec.Command(nsexplore, "-server", server, "-workload", "NVSA", "-out", out, "-quiet")
		if o, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("nsexplore against %s: %v\n%s", server, err, o)
		}
		b, err := os.ReadFile(out)
		if err != nil {
			t.Fatal(err)
		}
		var art dse.Artifact
		if err := json.Unmarshal(b, &art); err != nil {
			t.Fatalf("parsing %s: %v", out, err)
		}
		return art
	}
	single := sweep("http://"+addrA, filepath.Join(bin, "single.json"))
	routed := sweep("http://"+addrR, filepath.Join(bin, "routed.json"))

	for name, art := range map[string]dse.Artifact{"single": single, "routed": routed} {
		if art.GridSize < 200 {
			t.Fatalf("%s sweep grid has %d points, want >= 200", name, art.GridSize)
		}
		if art.Evaluated != art.GridSize || art.Failed != 0 {
			t.Fatalf("%s sweep evaluated %d/%d with %d failed, want full coverage",
				name, art.Evaluated, art.GridSize, art.Failed)
		}
		if art.FrontSize == 0 || len(art.Front) != art.FrontSize {
			t.Fatalf("%s sweep front empty or inconsistent: size %d, len %d",
				name, art.FrontSize, len(art.Front))
		}
	}
	singleFront, err := json.Marshal(single.Front)
	if err != nil {
		t.Fatal(err)
	}
	routedFront, err := json.Marshal(routed.Front)
	if err != nil {
		t.Fatal(err)
	}
	if string(singleFront) != string(routedFront) {
		t.Fatalf("routed front is not byte-identical to the single-replica front:\nsingle: %s\nrouted: %s",
			singleFront, routedFront)
	}

	// Trace-once/project-many payoff, measured by the nsbench smoke: the
	// artifact records how much faster re-projecting a point over the
	// cached trace is than re-characterizing per point (floor: 50x).
	artPath := os.Getenv("NSEXPLORE_ARTIFACT")
	if artPath == "" {
		artPath = filepath.Join(bin, "BENCH_explore.json")
	}
	cmd := exec.Command(nsbench, "-explore", artPath)
	cmd.Dir = "../.."
	if o, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("nsbench -explore: %v\n%s", err, o)
	}
	b, err := os.ReadFile(artPath)
	if err != nil {
		t.Fatal(err)
	}
	var bench dse.Artifact
	if err := json.Unmarshal(b, &bench); err != nil {
		t.Fatal(err)
	}
	if bench.Evaluated != bench.GridSize || bench.Failed != 0 {
		t.Fatalf("nsbench sweep evaluated %d/%d with %d failed", bench.Evaluated, bench.GridSize, bench.Failed)
	}
	if bench.ReprojectionSpeedup < 50 {
		t.Fatalf("re-projection speedup %.1fx below the 50x acceptance floor", bench.ReprojectionSpeedup)
	}
	t.Logf("explore smoke: %d points routed across 2 replicas, front size %d, re-projection speedup %.0fx",
		routed.Evaluated, routed.FrontSize, bench.ReprojectionSpeedup)
}
