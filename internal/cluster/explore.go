package cluster

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"

	"github.com/neurosym/nsbench/internal/dse"
	"github.com/neurosym/nsbench/internal/hwsim"
	"github.com/neurosym/nsbench/internal/serve"
)

// handleExplore fans one design-space sweep out across the cluster. The
// grid is partitioned into min(live replicas, grid size) shards — shard i
// owns the indices congruent to i — and each shard is streamed from a
// replica chosen by consistent hashing on the sweep-shard key
// (canonical key + "\x00explore-shard-i"), with failover to the next ring
// nodes on transport errors or gateway-class statuses.
//
// The client sees one interleaved NDJSON stream: the router's meta chunk
// first, then every replica's point chunks forwarded verbatim as they
// arrive (deduplicated by grid index, so a shard retried after a partial
// stream never repeats a point), and finally one merged summary whose
// Pareto front is dse.MergeFronts over the shard fronts — provably equal
// to the front a single replica would compute over the whole grid, and
// byte-identical to it because point evaluation is deterministic.
func (rt *Router) handleExplore(w http.ResponseWriter, r *http.Request) {
	if !allowMethods(w, r, http.MethodPost) {
		return
	}
	raw, err := io.ReadAll(io.LimitReader(r.Body, maxBodyBytes))
	if err != nil {
		http.Error(w, "reading body: "+err.Error(), http.StatusBadRequest)
		return
	}
	var req serve.ExploreRequest
	if err := json.Unmarshal(raw, &req); err != nil {
		http.Error(w, "bad request body: "+err.Error(), http.StatusBadRequest)
		return
	}
	if req.ShardCount != 0 || req.ShardIndex != 0 {
		http.Error(w, "shard_index/shard_count are router-assigned; sweep the whole grid", http.StatusBadRequest)
		return
	}
	canon, key, err := serve.Canonicalize(serve.Request{Workload: req.Workload, Device: req.Device})
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	dev, err := hwsim.DeviceByName(canon.Device)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	// Resolving the grid here both validates the space before any bytes
	// stream and fixes the shard count against the grid size.
	grid, err := dse.Resolve(dev, req.Space)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	live := rt.ring.Len()
	if live == 0 {
		w.Header().Set("Retry-After", retryAfterSeconds(rt.cfg.Health.Interval))
		http.Error(w, errNoReplicas.Error(), http.StatusServiceUnavailable)
		return
	}
	shards := live
	if grid.Size() < shards {
		shards = grid.Size()
	}
	rt.exploreSweeps.Inc()

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-store")
	flusher, _ := w.(http.Flusher)
	out := &streamWriter{w: w, flusher: flusher, sent: make(map[int]bool)}
	out.writeChunk(dse.Chunk{Type: "meta", Meta: &dse.ChunkMeta{
		Workload:   canon.Workload,
		Device:     canon.Device,
		GridSize:   grid.Size(),
		ShardIndex: 0,
		ShardCount: 1,
		Shards:     shards,
	}})

	id := requestID(r)
	start := time.Now()
	summaries := make([]*dse.Summary, shards)
	errs := make([]error, shards)
	var wg sync.WaitGroup
	for i := 0; i < shards; i++ {
		wg.Add(1)
		go func(shard int) {
			defer wg.Done()
			summaries[shard], errs[shard] = rt.streamShard(r.Context(), key, canon, req.Space, shard, shards, id, out)
		}(i)
	}
	wg.Wait()

	sum := &dse.Summary{
		Workload:   canon.Workload,
		Device:     canon.Device,
		GridSize:   grid.Size(),
		ShardIndex: 0,
		ShardCount: 1,
	}
	var fronts [][]dse.PointResult
	for i, s := range summaries {
		if errs[i] != nil {
			sum.Errors = append(sum.Errors, fmt.Sprintf("shard %d/%d: %v", i, shards, errs[i]))
			continue
		}
		sum.Evaluated += s.Evaluated
		sum.Failed += s.Failed
		fronts = append(fronts, s.Front)
	}
	sum.Front = dse.MergeFronts(fronts...)
	sum.FrontSize = len(sum.Front)
	elapsed := time.Since(start)
	sum.ElapsedNs = elapsed.Nanoseconds()
	if s := elapsed.Seconds(); s > 0 {
		sum.PointsPerSec = float64(sum.Evaluated) / s
	}
	out.writeChunk(dse.Chunk{Type: "summary", Summary: sum})
}

// streamWriter serializes interleaved shard streams onto one client
// connection: point lines are forwarded verbatim under the lock,
// deduplicated by grid index so shard retries never repeat a point.
type streamWriter struct {
	mu      sync.Mutex
	w       io.Writer
	flusher http.Flusher
	sent    map[int]bool
	err     error // first client write error; fails every later write
}

// writeChunk marshals and writes one router-authored chunk.
func (sw *streamWriter) writeChunk(c dse.Chunk) error {
	b, err := json.Marshal(c)
	if err != nil {
		return err
	}
	return sw.writeLine(b, -1)
}

// writeLine writes one NDJSON line. index >= 0 marks a point line subject
// to deduplication.
func (sw *streamWriter) writeLine(line []byte, index int) error {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	if sw.err != nil {
		return sw.err
	}
	if index >= 0 {
		if sw.sent[index] {
			return nil
		}
		sw.sent[index] = true
	}
	if _, err := sw.w.Write(append(line, '\n')); err != nil {
		sw.err = err
		return err
	}
	if sw.flusher != nil {
		sw.flusher.Flush()
	}
	return nil
}

// streamShard streams one shard of the sweep from its ring-assigned
// replica, forwarding point lines into out and returning the shard
// summary. On a retryable failure — transport error, gateway-class or 429
// status, or a stream that dies before its summary — the shard is re-run
// on the next ring node; already-forwarded points are suppressed by the
// writer's index dedupe, and the engine's determinism makes the retried
// points byte-identical to the originals.
func (rt *Router) streamShard(ctx context.Context, key string, canon serve.Request, space dse.Space, shard, shards int, id string, out *streamWriter) (*dse.Summary, error) {
	shardKey := key + "\x00explore-shard-" + strconv.Itoa(shard)
	nodes := rt.ring.GetN(shardKey, rt.cfg.MaxAttempts)
	if len(nodes) == 0 {
		return nil, errNoReplicas
	}
	body, err := json.Marshal(serve.ExploreRequest{
		Workload:   canon.Workload,
		Device:     canon.Device,
		Space:      space,
		ShardIndex: shard,
		ShardCount: shards,
	})
	if err != nil {
		return nil, err
	}
	var lastErr error
	for i, node := range nodes {
		if i > 0 {
			rt.retries.Inc()
			select {
			case <-time.After(rt.backoff(i)):
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
		sum, err := rt.streamShardFrom(ctx, node, body, id, out)
		if err == nil {
			rt.exploreShards.Inc()
			return sum, nil
		}
		lastErr = err
		if rt.logger != nil {
			rt.logger.Warn("explore shard attempt failed", "node", node, "shard", shard, "id", id, "err", err)
		}
		if ctx.Err() != nil {
			return nil, lastErr
		}
	}
	return nil, lastErr
}

// errShardStatus wraps a non-200 upstream answer so streamShard can fail
// over on it.
type errShardStatus struct {
	code int
	body string
}

func (e *errShardStatus) Error() string { return fmt.Sprintf("status %d: %s", e.code, e.body) }

// streamShardFrom runs one shard attempt against one replica, forwarding
// its point lines and returning its summary.
func (rt *Router) streamShardFrom(ctx context.Context, node string, body []byte, id string, out *streamWriter) (*dse.Summary, error) {
	// No per-attempt timeout: a large shard legitimately streams for a
	// while, and a wedged upstream is caught by the request context (client
	// disconnect) or the scan loop erroring out.
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, node+"/v1/explore", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Request-ID", id)
	resp, err := rt.client.Do(req)
	if err != nil {
		rt.nodeErrs.With(node).Inc()
		rt.health.ReportFailure(node)
		return nil, fmt.Errorf("%s: %w", node, err)
	}
	defer resp.Body.Close()
	rt.nodeReqs.With(node, strconv.Itoa(resp.StatusCode)).Inc()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		switch resp.StatusCode {
		case http.StatusBadGateway, http.StatusServiceUnavailable, http.StatusGatewayTimeout:
			rt.health.ReportFailure(node)
		case http.StatusTooManyRequests:
			// Backpressure, not ill health; the next node may have a slot.
		default:
			rt.health.ReportSuccess(node)
		}
		return nil, &errShardStatus{code: resp.StatusCode, body: string(bytes.TrimSpace(b))}
	}

	var summary *dse.Summary
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 64*1024), maxBodyBytes)
	for sc.Scan() {
		line := sc.Bytes()
		var c dse.Chunk
		if err := json.Unmarshal(line, &c); err != nil {
			rt.health.ReportFailure(node)
			return nil, fmt.Errorf("%s: bad chunk %.80q: %w", node, line, err)
		}
		switch c.Type {
		case "meta":
			// The shard's own meta is router-internal; the client already
			// got the sweep-level one.
		case "point":
			if c.Point == nil {
				return nil, fmt.Errorf("%s: point chunk without point", node)
			}
			if err := out.writeLine(append([]byte(nil), line...), c.Point.Index); err != nil {
				return nil, err
			}
		case "summary":
			summary = c.Summary
		default:
			return nil, fmt.Errorf("%s: unknown chunk type %q", node, c.Type)
		}
	}
	if err := sc.Err(); err != nil {
		rt.nodeErrs.With(node).Inc()
		rt.health.ReportFailure(node)
		return nil, fmt.Errorf("%s: stream: %w", node, err)
	}
	if summary == nil {
		rt.health.ReportFailure(node)
		return nil, fmt.Errorf("%s: stream ended without a summary", node)
	}
	rt.health.ReportSuccess(node)
	return summary, nil
}
