package cluster

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"github.com/neurosym/nsbench/internal/dse"
)

// exploreSpace is a 4x4x2x2x2x2 = 256-point space, comfortably above the
// 200-point fan-out floor pinned by the acceptance criteria.
const exploreSpace = `{
	"peak_gflops":{"min":1000,"max":16000,"steps":4,"log":true},
	"mem_bw_gbs":{"min":60,"max":1200,"steps":4,"log":true},
	"pes":{"values":[1,2]},
	"dataflow_eff":{"values":[1,1.5]},
	"l1_kb":{"values":[64,128]},
	"l2_kb":{"values":[2048,8192]}}`

// postExploreStream issues one explore request and parses the NDJSON
// stream into chunks, keeping each point line's raw bytes for the
// byte-identity assertions.
func postExploreStream(t *testing.T, h http.Handler, body string) (*httptest.ResponseRecorder, []dse.Chunk, map[int]string) {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, "/v1/explore", strings.NewReader(body))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		return rec, nil, nil
	}
	var chunks []dse.Chunk
	rawPoints := make(map[int]string)
	sc := bufio.NewScanner(bytes.NewReader(rec.Body.Bytes()))
	sc.Buffer(make([]byte, 1<<20), 1<<22)
	for sc.Scan() {
		var c dse.Chunk
		if err := json.Unmarshal(sc.Bytes(), &c); err != nil {
			t.Fatalf("bad NDJSON line %.120q: %v", sc.Text(), err)
		}
		chunks = append(chunks, c)
		if c.Type == "point" {
			rawPoints[c.Point.Index] = sc.Text()
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return rec, chunks, rawPoints
}

// TestExploreFanOut is the end-to-end pin for the distributed sweep: a
// ~256-point grid fanned across two live replicas streams incrementally,
// fails zero points, and merges to a global Pareto front byte-identical
// to the one a single replica computes over the whole grid.
func TestExploreFanOut(t *testing.T) {
	wls := testWorkloads()
	repA, repB := startReplica(t), startReplica(t)
	rt, err := New(Config{Replicas: []string{repA.hs.URL, repB.hs.URL}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)

	body := `{"workload":"` + wls[0] + `","space":` + exploreSpace + `}`
	rec, chunks, rawPoints := postExploreStream(t, rt.Handler(), body)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}

	meta := chunks[0]
	if meta.Type != "meta" || meta.Meta == nil {
		t.Fatalf("first chunk %+v, want meta", meta)
	}
	if meta.Meta.GridSize != 256 || meta.Meta.Shards != 2 {
		t.Fatalf("meta = %+v, want 256 points over 2 shards", meta.Meta)
	}

	last := chunks[len(chunks)-1]
	if last.Type != "summary" || last.Summary == nil {
		t.Fatalf("last chunk %+v, want summary", last)
	}
	sum := last.Summary
	if len(sum.Errors) != 0 {
		t.Fatalf("shard errors: %v", sum.Errors)
	}
	if sum.Evaluated != 256 || sum.Failed != 0 {
		t.Fatalf("evaluated %d failed %d, want 256/0", sum.Evaluated, sum.Failed)
	}
	if len(rawPoints) != 256 {
		t.Fatalf("stream carried %d distinct points, want 256", len(rawPoints))
	}
	if sum.FrontSize == 0 || len(sum.Front) != sum.FrontSize {
		t.Fatalf("merged front missing: size %d, len %d", sum.FrontSize, len(sum.Front))
	}

	// Both replicas actually served shards: the fan-out was real.
	if rt.exploreShards.Value() != 2 {
		t.Fatalf("%d shard streams completed, want 2", rt.exploreShards.Value())
	}

	// Single-node reference: the same sweep on one replica directly.
	resp, err := http.Post(repA.hs.URL+"/v1/explore", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var single *dse.Summary
	singlePoints := make(map[int]string)
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<22)
	for sc.Scan() {
		var c dse.Chunk
		if err := json.Unmarshal(sc.Bytes(), &c); err != nil {
			t.Fatal(err)
		}
		switch c.Type {
		case "point":
			singlePoints[c.Point.Index] = sc.Text()
		case "summary":
			single = c.Summary
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if single == nil {
		t.Fatal("single-node sweep produced no summary")
	}

	// The acceptance pin: the merged cluster front is byte-identical to
	// the single-node front.
	merged, _ := json.Marshal(sum.Front)
	ref, _ := json.Marshal(single.Front)
	if !bytes.Equal(merged, ref) {
		t.Fatalf("merged front != single-node front:\n%s\n%s", merged, ref)
	}
	// And so is every streamed point line (determinism across replicas).
	for idx, line := range singlePoints {
		if got, ok := rawPoints[idx]; !ok || got != line {
			t.Fatalf("point %d differs between cluster and single node:\n%s\n%s", idx, rawPoints[idx], line)
		}
	}
}

// TestExploreFanOutShardRetry pins shard failover: with one replica dead
// at stream time, its shards fail over to the live one and the sweep
// still completes every point with an exact front.
func TestExploreFanOutShardRetry(t *testing.T) {
	wls := testWorkloads()
	repA, repB := startReplica(t), startReplica(t)
	rt, err := New(Config{Replicas: []string{repA.hs.URL, repB.hs.URL}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)

	// Kill B's listener without telling the health checker: the router
	// still plans 2 shards, and B's shard must fail over to A.
	repB.hs.Close()

	body := `{"workload":"` + wls[1] + `","space":` + exploreSpace + `}`
	rec, chunks, rawPoints := postExploreStream(t, rt.Handler(), body)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	sum := chunks[len(chunks)-1].Summary
	if sum == nil {
		t.Fatal("no summary chunk")
	}
	if len(sum.Errors) != 0 {
		t.Fatalf("shard errors after failover: %v", sum.Errors)
	}
	if sum.Evaluated != 256 || len(rawPoints) != 256 {
		t.Fatalf("evaluated %d, streamed %d distinct points, want 256/256", sum.Evaluated, len(rawPoints))
	}
	if sum.FrontSize == 0 {
		t.Fatal("empty front after failover")
	}
}

// TestExploreRouterValidation pins the router-side request checks.
func TestExploreRouterValidation(t *testing.T) {
	testWorkloads()
	rep := startReplica(t)
	rt, err := New(Config{Replicas: []string{rep.hs.URL}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	h := rt.Handler()
	cases := []struct {
		name, body string
		want       int
	}{
		{"bad json", `{`, http.StatusBadRequest},
		{"unknown workload", `{"workload":"nope"}`, http.StatusBadRequest},
		{"client-set shards", `{"workload":"clusterfast-a","shard_count":4}`, http.StatusBadRequest},
		{"bad space", `{"workload":"clusterfast-a","space":{"pes":{"min":2,"max":1,"steps":2}}}`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		req := httptest.NewRequest(http.MethodPost, "/v1/explore", strings.NewReader(tc.body))
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != tc.want {
			t.Errorf("%s: status %d, want %d (%s)", tc.name, rec.Code, tc.want, rec.Body.String())
		}
	}
}
