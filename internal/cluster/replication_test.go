package cluster

import (
	"net/http"
	"testing"
	"time"
)

// TestClusterReplicatedWarmRead is the replication acceptance test: with
// -replication 2 a key's report is fan-filled to both ring owners, so
// killing the replica that computed it leaves the next read a warm cache
// hit on the survivor — no recharacterization.
func TestClusterReplicatedWarmRead(t *testing.T) {
	testWorkloads()
	a := startReplica(t)
	b := startReplica(t)

	rt := newTestRouter(t, Config{
		Replicas:       []string{a.hs.URL, b.hs.URL},
		Replication:    2,
		Health:         fastHealth(),
		RetryBaseDelay: time.Millisecond,
	})
	h := rt.Handler()

	// Any key: with two nodes both are owners under replication 2.
	body, _ := keyOwnedBy(t, rt, a.hs.URL)

	first := routerPost(h, body)
	if first.Code != http.StatusOK {
		t.Fatalf("first read: %d %s", first.Code, first.Body)
	}
	if got := first.Header().Get("X-NSServe-Cache"); got != "miss" {
		t.Fatalf("first read disposition %q, want miss", got)
	}
	server := first.Header().Get("X-NSRouter-Node")
	reps := map[string]*replica{a.hs.URL: a, b.hs.URL: b}
	other := a
	if server == a.hs.URL {
		other = b
	}
	killed, survivor := reps[server], other

	// The async fan-fill lands the same bytes in the other owner's cache.
	await(t, "fill on the sibling owner", func() bool {
		return getStats(t, survivor.hs.URL).CacheFills == 1
	})
	if fills := getStats(t, survivor.hs.URL); fills.Runs != 0 {
		t.Fatalf("survivor ran %d characterizations, want 0 (fill only)", fills.Runs)
	}

	// Kill the replica that computed the report; wait for ejection.
	killed.stop()
	await(t, "killed owner ejected", func() bool { return !rt.ring.Contains(server) })

	// The next read is served warm by the survivor: a cache hit with the
	// exact bytes of the original response, and still zero runs there.
	second := routerPost(h, body)
	if second.Code != http.StatusOK {
		t.Fatalf("read after kill: %d %s", second.Code, second.Body)
	}
	if got := second.Header().Get("X-NSRouter-Node"); got != survivor.hs.URL {
		t.Fatalf("served by %s, want survivor %s", got, survivor.hs.URL)
	}
	if got := second.Header().Get("X-NSServe-Cache"); got != "hit" {
		t.Fatalf("read after kill disposition %q, want hit (no recharacterization)", got)
	}
	if first.Body.String() != second.Body.String() {
		t.Fatalf("replicated read changed bytes:\nfirst:  %s\nsecond: %s", first.Body, second.Body)
	}
	snap := getStats(t, survivor.hs.URL)
	if snap.Runs != 0 || snap.CacheHits != 1 {
		t.Fatalf("survivor stats %+v, want 0 runs / 1 cache hit", snap)
	}
}

// TestRouteOrderPrefersLeastLoadedOwner: with replication > 1 the first
// node in the attempt order is the owner with the lowest in-flight ×
// latency score, while single-owner routing keeps the ring's order.
func TestRouteOrderPrefersLeastLoadedOwner(t *testing.T) {
	a := stubReplica(t, func(w http.ResponseWriter, r *http.Request) {})
	b := stubReplica(t, func(w http.ResponseWriter, r *http.Request) {})
	rt := newTestRouter(t, Config{
		Replicas:    []string{a.URL, b.URL},
		Replication: 2,
		Health:      HealthConfig{Interval: time.Hour}, // no probe noise
	})
	ringOrder := rt.ring.GetN("some-key", 2)
	primary, secondary := ringOrder[0], ringOrder[1]

	// Pin both load scores to the same observed latency: with equal
	// scores the stable sort preserves the ring's deterministic order.
	rt.nodeLat.With(primary).ObserveSeconds((10 * time.Millisecond).Nanoseconds())
	rt.nodeLat.With(secondary).ObserveSeconds((10 * time.Millisecond).Nanoseconds())
	if got := rt.routeOrder("some-key"); got[0] != primary {
		t.Fatalf("unloaded order %v, want ring primary %s first", got, primary)
	}

	// Load the ring primary: in-flight requests push its score up, so the
	// secondary owner becomes the read target.
	cnt := rt.inflightCounter(primary)
	cnt.Add(5)
	if got := rt.routeOrder("some-key"); got[0] != secondary || got[1] != primary {
		t.Fatalf("loaded order %v, want least-loaded %s first", got, secondary)
	}
	cnt.Add(-5)

	// Observed latency alone also tips the scale: a slow primary loses to
	// a fast secondary even with equal in-flight counts.
	rt.nodeLat.With(primary).ObserveSeconds((500 * time.Millisecond).Nanoseconds())
	rt.nodeLat.With(secondary).ObserveSeconds((5 * time.Millisecond).Nanoseconds())
	if got := rt.routeOrder("some-key"); got[0] != secondary {
		t.Fatalf("latency-weighted order %v, want fast owner %s first", got, secondary)
	}
}
