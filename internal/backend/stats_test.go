package backend

import (
	"sync"
	"testing"
	"time"
)

func TestParallelStatsCountDispatch(t *testing.T) {
	p := NewParallel(4)
	defer p.Close()

	// Too narrow to split: no stats movement.
	p.For(3, 100, func(lo, hi int) {})
	if s := p.Stats(); s.Splits != 0 || s.ChunksDispatched != 0 || s.ChunksInline != 0 {
		t.Fatalf("narrow dispatch moved stats: %+v", s)
	}

	// Wide dispatch: one split, chunks-1 chunks leave the caller (to the
	// pool or, if workers are momentarily busy, inline).
	p.For(1<<14, 1, func(lo, hi int) {})
	s := p.Stats()
	if s.Workers != 4 {
		t.Fatalf("workers = %d, want 4", s.Workers)
	}
	if s.Splits != 1 {
		t.Fatalf("splits = %d, want 1", s.Splits)
	}
	if s.ChunksDispatched+s.ChunksInline != 3 {
		t.Fatalf("dispatched %d + inline %d != 3 off-caller chunks", s.ChunksDispatched, s.ChunksInline)
	}
	// Workers decrement busy just after completing their chunk, which can
	// land a hair after For returns — poll briefly instead of asserting
	// instantaneously.
	deadline := time.Now().Add(2 * time.Second)
	for p.Stats().BusyWorkers != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("busy workers stuck at %d, want 0", p.Stats().BusyWorkers)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestParallelStatsInlineAfterClose(t *testing.T) {
	p := NewParallel(2)
	p.For(1<<12, 1, func(lo, hi int) {}) // spawn the pool
	p.Close()
	before := p.Stats()
	p.For(1<<12, 1, func(lo, hi int) {}) // all off-caller chunks fall back inline
	after := p.Stats()
	if after.ChunksDispatched != before.ChunksDispatched {
		t.Fatalf("chunks dispatched to a closed pool: %+v -> %+v", before, after)
	}
	if after.ChunksInline != before.ChunksInline+1 {
		t.Fatalf("inline fallback not counted: %+v -> %+v", before, after)
	}
}

// TestParallelStatsRace pounds Stats against concurrent dispatch; under
// -race this proves the counters are safely readable while kernels run.
func TestParallelStatsRace(t *testing.T) {
	p := NewParallel(4)
	defer p.Close()
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				p.Stats()
			}
		}
	}()
	for i := 0; i < 50; i++ {
		p.For(1<<12, 1, func(lo, hi int) {})
	}
	close(stop)
	wg.Wait()
	if s := p.Stats(); s.Splits != 50 {
		t.Fatalf("splits = %d, want 50", s.Splits)
	}
}
