// Package backend provides pluggable execution backends for the tensor
// kernels behind the instrumented ops engine.
//
// A Backend is the execution substrate a kernel runs on: it dispatches
// kernel chunks (serially or across a bounded goroutine worker pool) and
// pools scratch buffers so hot kernels avoid per-call allocation. The
// paper's characterization shows neuro-symbolic workloads dominated by
// memory-bound symbolic kernels that underutilize parallel hardware
// (Tab. IV); the Parallel backend is the substrate-level answer, while
// Serial preserves the original single-threaded execution exactly.
//
// Determinism contract: For partitions the iteration space [0, n) into
// contiguous chunks whose boundaries depend only on n, grain, and the
// backend's worker count — never on scheduling or timing. Kernels chunk
// their *output* space, so every output element is produced by exactly one
// chunk with the same inner arithmetic order as the serial loop. Results
// are therefore bit-identical across backends and across runs.
package backend

// Backend executes kernel chunks and pools scratch memory. Implementations
// must be safe for concurrent use by multiple engines.
//
// Backend is a structural superset of tensor.Runner: any Backend can be
// passed directly to the chunked tensor kernels.
type Backend interface {
	// Name identifies the backend ("serial", "parallel").
	Name() string
	// Workers returns the dispatch width (1 for serial).
	Workers() int
	// For partitions [0, n) into deterministic contiguous chunks of at
	// least grain iterations each and invokes fn once per chunk, possibly
	// concurrently. It returns only after every chunk has completed.
	// fn must write to disjoint state per chunk and must not call For.
	For(n, grain int, fn func(lo, hi int))
	// Scratch returns a float64 buffer with at least n usable elements,
	// drawn from a pool when possible. The contents are unspecified.
	Scratch(n int) []float64
	// Release returns a Scratch buffer to the pool for reuse.
	Release(buf []float64)
	// Scratch32 returns a float32 buffer with at least n usable elements
	// (packed GEMM/conv panels at operand precision), drawn from a pool
	// when possible. Safe to call from concurrent For chunks.
	Scratch32(n int) []float32
	// Release32 returns a Scratch32 buffer to the pool for reuse.
	Release32(buf []float32)
	// Close releases backend resources (worker goroutines). The backend
	// must not be used after Close. Close on Serial is a no-op.
	Close()
}

// PoolStats is a point-in-time snapshot of a worker pool's dispatch
// behaviour: how often kernels split, where their chunks ran, and how
// many workers are busy right now. Counters are cumulative since the
// backend was constructed.
type PoolStats struct {
	// Workers is the pool's dispatch width.
	Workers int
	// BusyWorkers is the number of workers executing a chunk right now;
	// BusyWorkers/Workers is the pool's instantaneous utilization.
	BusyWorkers int
	// Splits counts For calls wide enough to split into multiple chunks.
	Splits uint64
	// ChunksDispatched counts chunks handed to pool workers.
	ChunksDispatched uint64
	// ChunksInline counts fallback chunks run on the calling goroutine
	// because every worker was busy or the pool was closed — the pool's
	// saturation signal.
	ChunksInline uint64
}

// StatsReporter is implemented by backends that publish pool statistics
// (Parallel does; Serial has nothing to report).
type StatsReporter interface {
	Stats() PoolStats
}

// WorkerFor is implemented by backends that can attribute each chunk to
// the worker executing it: worker 0 is the calling goroutine, workers
// 1..Workers() are pool goroutines. Chunk boundaries follow the same
// determinism contract as For — only the worker attribution reflects
// runtime scheduling. Timeline tracers use this to land each chunk on the
// track of the lane that really ran it.
type WorkerFor interface {
	ForWorker(n, grain int, fn func(worker, lo, hi int))
}

// chunkBounds returns the half-open range of chunk c when [0, n) is split
// into chunks even pieces. Boundaries are a pure function of its inputs,
// which is what makes parallel execution reproducible.
func chunkBounds(n, chunks, c int) (lo, hi int) {
	return c * n / chunks, (c + 1) * n / chunks
}

// numChunks decides how many chunks to split n iterations into, given the
// per-chunk floor grain and the dispatch width. At most one chunk per
// worker, and never chunks smaller than grain: tiny kernels stay inline.
func numChunks(n, grain, workers int) int {
	if grain < 1 {
		grain = 1
	}
	chunks := n / grain
	if chunks > workers {
		chunks = workers
	}
	if chunks < 1 {
		chunks = 1
	}
	return chunks
}
