package backend

import (
	"math/bits"
	"sync"
)

// scratchPool pools scratch buffers in power-of-two size classes so
// kernels with different working-set sizes do not thrash a single pool
// slot. Two instantiations exist per backend: float64 for reduction
// scratch (FFT twiddles, softmax sums) and float32 for packed GEMM/conv
// panels, which must match operand precision to be copied with the memmove
// fast path.
type scratchPool[T float32 | float64] struct {
	classes [maxSizeClass]sync.Pool
}

// maxSizeClass covers buffers up to 2^31 elements; larger requests are
// allocated directly and dropped on release.
const maxSizeClass = 32

// sizeClass returns the pool index for a request of n elements: the
// exponent of the smallest power of two >= n.
func sizeClass(n int) int {
	if n <= 1 {
		return 0
	}
	return bits.Len(uint(n - 1))
}

// get returns a buffer with at least n elements, pooled when possible.
func (p *scratchPool[T]) get(n int) []T {
	c := sizeClass(n)
	if c >= maxSizeClass {
		return make([]T, n)
	}
	if v := p.classes[c].Get(); v != nil {
		return v.(*scratchBuf[T]).b[:n]
	}
	return make([]T, 1<<c)[:n]
}

// put returns a buffer to its size class. Buffers whose capacity is not an
// exact size class (direct allocations) are dropped.
func (p *scratchPool[T]) put(buf []T) {
	c := cap(buf)
	if c == 0 || c&(c-1) != 0 {
		return
	}
	class := sizeClass(c)
	if class >= maxSizeClass {
		return
	}
	p.classes[class].Put(&scratchBuf[T]{b: buf[:c]})
}

// scratchBuf boxes a slice so sync.Pool stores a pointer-shaped value.
type scratchBuf[T float32 | float64] struct{ b []T }
