package backend

// Serial executes every kernel inline on the calling goroutine — the
// original nsbench execution model, byte-for-byte. It is the zero-cost
// default: a Serial value carries no state beyond the shared scratch pool.
type Serial struct{}

// serialScratch and serialScratch32 are shared by all Serial values;
// Serial{} is a value type so the pools must live at package scope.
var (
	serialScratch   scratchPool[float64]
	serialScratch32 scratchPool[float32]
)

// Name identifies the backend.
func (Serial) Name() string { return "serial" }

// Workers returns the dispatch width.
func (Serial) Workers() int { return 1 }

// For runs the whole range as one inline chunk.
func (Serial) For(n, grain int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	fn(0, n)
}

// ForWorker runs the whole range as one inline chunk on the calling
// goroutine (worker 0).
func (Serial) ForWorker(n, grain int, fn func(worker, lo, hi int)) {
	if n <= 0 {
		return
	}
	fn(0, 0, n)
}

// Scratch returns a pooled buffer with at least n elements.
func (Serial) Scratch(n int) []float64 { return serialScratch.get(n) }

// Release returns a Scratch buffer to the pool.
func (Serial) Release(buf []float64) { serialScratch.put(buf) }

// Scratch32 returns a pooled float32 buffer with at least n elements.
func (Serial) Scratch32(n int) []float32 { return serialScratch32.get(n) }

// Release32 returns a Scratch32 buffer to the pool.
func (Serial) Release32(buf []float32) { serialScratch32.put(buf) }

// Close is a no-op: Serial holds no resources.
func (Serial) Close() {}
