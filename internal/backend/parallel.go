package backend

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Parallel dispatches kernel chunks across a bounded pool of worker
// goroutines. The pool is started lazily on the first dispatch wide enough
// to split, so constructing a Parallel backend is free, and Close tears
// the workers down.
//
// Chunk boundaries are a pure function of (n, grain, workers) — see the
// package comment for the determinism contract — so results are
// bit-identical to the Serial backend and event traces recorded above it
// are reproducible run to run.
type Parallel struct {
	workers   int
	scratch   scratchPool[float64]
	scratch32 scratchPool[float32]

	// Dispatch statistics (see PoolStats). Updated with one atomic add
	// per For call plus one busy inc/dec per worker-executed chunk, so
	// keeping them always-on costs nanoseconds against kernel work.
	splits     atomic.Uint64
	dispatched atomic.Uint64
	inline     atomic.Uint64
	busy       atomic.Int64

	start sync.Once
	wg    sync.WaitGroup // running worker goroutines

	// mu guards tasks and closed on both sides: For dispatches under the
	// read lock, Close and startWorkers mutate under the write lock. The
	// channel is nilled out under the write lock before it is closed, so a
	// concurrent For can never send on a closed channel — it either sees
	// the live channel (and Close waits for the dispatch to finish) or nil
	// (and falls back to inline execution). Each worker goroutine invokes
	// tasks with its own 1-based index, which is how chunk executions are
	// attributed to timeline tracks.
	mu     sync.RWMutex
	tasks  chan func(worker int)
	closed bool
}

// NewParallel returns a parallel backend with the given worker count;
// workers < 1 selects runtime.GOMAXPROCS(0). Worker goroutines are not
// spawned until the first parallel dispatch.
func NewParallel(workers int) *Parallel {
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Parallel{workers: workers}
}

// Name identifies the backend.
func (p *Parallel) Name() string { return fmt.Sprintf("parallel(%d)", p.workers) }

// Workers returns the worker-pool size.
func (p *Parallel) Workers() int { return p.workers }

// For splits [0, n) into at most Workers() deterministic contiguous chunks
// of at least grain iterations, runs chunk 0 on the calling goroutine and
// the rest on the pool, and returns once all chunks complete. For is safe
// to call concurrently with Close: chunks that can no longer reach the
// pool run inline.
func (p *Parallel) For(n, grain int, fn func(lo, hi int)) {
	p.ForWorker(n, grain, func(_, lo, hi int) { fn(lo, hi) })
}

// ForWorker is For with worker attribution: fn additionally receives the
// index of the lane executing the chunk — 0 for the calling goroutine
// (chunk 0 and inline fallbacks), 1..Workers() for pool goroutines.
// Chunk boundaries stay a pure function of (n, grain, workers); only the
// attribution reflects live scheduling.
func (p *Parallel) ForWorker(n, grain int, fn func(worker, lo, hi int)) {
	if n <= 0 {
		return
	}
	chunks := numChunks(n, grain, p.workers)
	if chunks <= 1 {
		fn(0, 0, n)
		return
	}
	p.start.Do(p.startWorkers)
	p.splits.Add(1)
	var wg sync.WaitGroup
	wg.Add(chunks - 1)
	// Hand chunks to the pool; if every worker is busy (e.g. a misbehaving
	// nested dispatch) or the pool is closed, run them inline so progress
	// is guaranteed without unbounded goroutine growth. Inline chunks run
	// after the read lock is released: holding it across fn would deadlock
	// a nested For against a concurrent Close waiting for the write lock.
	var inline []func(worker int)
	p.mu.RLock()
	tasks := p.tasks
	for c := 1; c < chunks; c++ {
		lo, hi := chunkBounds(n, chunks, c)
		task := func(worker int) {
			defer wg.Done()
			fn(worker, lo, hi)
		}
		// A nil channel is never ready to send, so a For overlapping Close
		// degrades to inline execution instead of panicking.
		select {
		case tasks <- task:
		default:
			inline = append(inline, task)
		}
	}
	p.mu.RUnlock()
	p.dispatched.Add(uint64(chunks - 1 - len(inline)))
	if len(inline) > 0 {
		p.inline.Add(uint64(len(inline)))
	}
	for _, task := range inline {
		task(0)
	}
	lo, hi := chunkBounds(n, chunks, 0)
	fn(0, lo, hi)
	wg.Wait()
}

// Stats snapshots the pool's dispatch statistics. Counters are read
// individually, so a snapshot under load is approximate.
func (p *Parallel) Stats() PoolStats {
	return PoolStats{
		Workers:          p.workers,
		BusyWorkers:      int(p.busy.Load()),
		Splits:           p.splits.Load(),
		ChunksDispatched: p.dispatched.Load(),
		ChunksInline:     p.inline.Load(),
	}
}

// startWorkers spawns the bounded worker pool. The task channel is
// unbuffered on purpose: a send succeeds only when a worker is actually
// idle to take it, so the select fallback in For runs the chunk inline
// instead of queueing it where a saturated pool would never drain it —
// nested dispatches cannot deadlock.
func (p *Parallel) startWorkers() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		// Close already consumed the pool's lifetime: a late first For
		// keeps tasks nil and every dispatch runs inline.
		return
	}
	tasks := make(chan func(worker int))
	p.tasks = tasks
	p.wg.Add(p.workers)
	for i := 0; i < p.workers; i++ {
		go func(worker int) {
			defer p.wg.Done()
			for task := range tasks {
				p.busy.Add(1)
				task(worker)
				p.busy.Add(-1)
			}
		}(i + 1)
	}
}

// Scratch returns a pooled buffer with at least n elements.
func (p *Parallel) Scratch(n int) []float64 { return p.scratch.get(n) }

// Release returns a Scratch buffer to the pool.
func (p *Parallel) Release(buf []float64) { p.scratch.put(buf) }

// Scratch32 returns a pooled float32 buffer with at least n elements.
func (p *Parallel) Scratch32(n int) []float32 { return p.scratch32.get(n) }

// Release32 returns a Scratch32 buffer to the pool.
func (p *Parallel) Release32(buf []float32) { p.scratch32.put(buf) }

// Close shuts down the worker pool and waits for the workers to exit;
// it is idempotent and safe to call concurrently with For. Dispatches
// that overlap or follow Close run their chunks inline.
func (p *Parallel) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	tasks := p.tasks
	p.tasks = nil
	p.mu.Unlock()
	if tasks == nil {
		return
	}
	// Closing outside the lock lets workers running nested dispatches (which
	// re-acquire the read lock) drain and exit instead of deadlocking.
	close(tasks)
	p.wg.Wait()
}
