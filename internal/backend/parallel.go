package backend

import (
	"fmt"
	"runtime"
	"sync"
)

// Parallel dispatches kernel chunks across a bounded pool of worker
// goroutines. The pool is started lazily on the first dispatch wide enough
// to split, so constructing a Parallel backend is free, and Close tears
// the workers down.
//
// Chunk boundaries are a pure function of (n, grain, workers) — see the
// package comment for the determinism contract — so results are
// bit-identical to the Serial backend and event traces recorded above it
// are reproducible run to run.
type Parallel struct {
	workers int
	scratch scratchPool

	start sync.Once
	tasks chan func()

	mu     sync.Mutex
	closed bool
}

// NewParallel returns a parallel backend with the given worker count;
// workers < 1 selects runtime.GOMAXPROCS(0). Worker goroutines are not
// spawned until the first parallel dispatch.
func NewParallel(workers int) *Parallel {
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Parallel{workers: workers}
}

// Name identifies the backend.
func (p *Parallel) Name() string { return fmt.Sprintf("parallel(%d)", p.workers) }

// Workers returns the worker-pool size.
func (p *Parallel) Workers() int { return p.workers }

// For splits [0, n) into at most Workers() deterministic contiguous chunks
// of at least grain iterations, runs chunk 0 on the calling goroutine and
// the rest on the pool, and returns once all chunks complete.
func (p *Parallel) For(n, grain int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	chunks := numChunks(n, grain, p.workers)
	if chunks <= 1 {
		fn(0, n)
		return
	}
	p.start.Do(p.startWorkers)
	var wg sync.WaitGroup
	wg.Add(chunks - 1)
	for c := 1; c < chunks; c++ {
		lo, hi := chunkBounds(n, chunks, c)
		task := func() {
			defer wg.Done()
			fn(lo, hi)
		}
		// Hand the chunk to the pool; if every worker is busy (e.g. a
		// misbehaving nested dispatch), run it inline so progress is
		// guaranteed without unbounded goroutine growth.
		select {
		case p.tasks <- task:
		default:
			task()
		}
	}
	lo, hi := chunkBounds(n, chunks, 0)
	fn(lo, hi)
	wg.Wait()
}

// startWorkers spawns the bounded worker pool. The task channel is
// unbuffered on purpose: a send succeeds only when a worker is actually
// idle to take it, so the select fallback in For runs the chunk inline
// instead of queueing it where a saturated pool would never drain it —
// nested dispatches cannot deadlock.
func (p *Parallel) startWorkers() {
	tasks := make(chan func())
	p.tasks = tasks
	for i := 0; i < p.workers; i++ {
		go func() {
			for task := range tasks {
				task()
			}
		}()
	}
}

// Scratch returns a pooled buffer with at least n elements.
func (p *Parallel) Scratch(n int) []float64 { return p.scratch.get(n) }

// Release returns a Scratch buffer to the pool.
func (p *Parallel) Release(buf []float64) { p.scratch.put(buf) }

// Close shuts down the worker pool. For must not be called afterwards;
// Close is idempotent.
func (p *Parallel) Close() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return
	}
	p.closed = true
	// Ensure the start once is consumed so a post-Close For cannot spawn a
	// fresh pool, then stop any running workers.
	p.start.Do(func() {})
	if p.tasks != nil {
		close(p.tasks)
		// A nil channel is never ready to send, so a For after Close falls
		// through its select to inline execution instead of panicking.
		p.tasks = nil
	}
}
