package backend

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestChunkBoundsCoverExactly(t *testing.T) {
	for _, n := range []int{1, 2, 7, 64, 1000, 1023} {
		for chunks := 1; chunks <= 8; chunks++ {
			prev := 0
			for c := 0; c < chunks; c++ {
				lo, hi := chunkBounds(n, chunks, c)
				if lo != prev {
					t.Fatalf("n=%d chunks=%d: chunk %d starts at %d, want %d", n, chunks, c, lo, prev)
				}
				if hi < lo {
					t.Fatalf("n=%d chunks=%d: chunk %d is inverted [%d,%d)", n, chunks, c, lo, hi)
				}
				prev = hi
			}
			if prev != n {
				t.Fatalf("n=%d chunks=%d: coverage ends at %d", n, chunks, prev)
			}
		}
	}
}

func TestNumChunksRespectsGrain(t *testing.T) {
	cases := []struct {
		n, grain, workers, want int
	}{
		{100, 1, 4, 4},   // plenty of work: one chunk per worker
		{100, 50, 4, 2},  // grain limits to 2 chunks
		{100, 200, 4, 1}, // too small to split
		{0, 1, 4, 1},     // degenerate n
		{100, 0, 4, 4},   // grain clamps to 1
		{3, 1, 8, 3},     // never more chunks than items
	}
	for _, c := range cases {
		if got := numChunks(c.n, c.grain, c.workers); got != c.want {
			t.Errorf("numChunks(%d, %d, %d) = %d, want %d", c.n, c.grain, c.workers, got, c.want)
		}
	}
}

func TestParallelForCoversRange(t *testing.T) {
	p := NewParallel(4)
	defer p.Close()
	n := 10000
	marks := make([]int32, n)
	p.For(n, 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			atomic.AddInt32(&marks[i], 1)
		}
	})
	for i, m := range marks {
		if m != 1 {
			t.Fatalf("index %d visited %d times", i, m)
		}
	}
}

func TestParallelForInlineBelowGrain(t *testing.T) {
	p := NewParallel(4)
	defer p.Close()
	var calls int32
	p.For(10, 100, func(lo, hi int) {
		atomic.AddInt32(&calls, 1)
		if lo != 0 || hi != 10 {
			t.Fatalf("inline chunk is [%d,%d), want [0,10)", lo, hi)
		}
	})
	if calls != 1 {
		t.Fatalf("below-grain dispatch ran %d chunks, want 1", calls)
	}
}

func TestParallelForNested(t *testing.T) {
	// A nested For must not deadlock: inner dispatches fall back to inline
	// execution when the pool is saturated.
	p := NewParallel(2)
	defer p.Close()
	total := int64(0)
	p.For(4, 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			p.For(100, 1, func(ilo, ihi int) {
				atomic.AddInt64(&total, int64(ihi-ilo))
			})
		}
	})
	if total != 400 {
		t.Fatalf("nested For covered %d iterations, want 400", total)
	}
}

func TestParallelCloseIdempotentAndForAfterClose(t *testing.T) {
	p := NewParallel(2)
	p.For(100, 1, func(lo, hi int) {})
	p.Close()
	p.Close() // must not panic
	// For after Close degrades to inline execution rather than hanging.
	ran := false
	p.For(10, 1, func(lo, hi int) {
		if lo == 0 {
			ran = true
		}
	})
	if !ran {
		t.Fatal("For after Close did not run")
	}
}

// TestParallelForCloseRace overlaps dispatching goroutines with a
// concurrent Close. Every For must still cover its full iteration space
// (degrading to inline execution once the pool is gone) and nothing may
// panic with a send on a closed channel; the CI -race job checks the
// channel handoff itself.
func TestParallelForCloseRace(t *testing.T) {
	const (
		goroutines = 4
		dispatches = 20
		n          = 512
	)
	for iter := 0; iter < 50; iter++ {
		p := NewParallel(4)
		var total atomic.Int64
		var wg sync.WaitGroup
		start := make(chan struct{})
		for g := 0; g < goroutines; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				<-start
				for k := 0; k < dispatches; k++ {
					p.For(n, 1, func(lo, hi int) {
						total.Add(int64(hi - lo))
					})
				}
			}()
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			p.Close()
		}()
		close(start)
		wg.Wait()
		if got := total.Load(); got != goroutines*dispatches*n {
			t.Fatalf("iteration %d: covered %d iterations, want %d", iter, got, goroutines*dispatches*n)
		}
	}
}

// TestParallelCloseStopsWorkers checks that Close synchronously tears the
// worker goroutines down — the property long-lived processes rely on to
// not leak a pool per backend.
func TestParallelCloseStopsWorkers(t *testing.T) {
	before := runtime.NumGoroutine()
	p := NewParallel(8)
	p.For(1<<16, 1, func(lo, hi int) {})
	p.Close()
	// Workers have left the task loop when Close returns; give the runtime
	// a moment to finish unwinding the goroutine stacks.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if runtime.NumGoroutine() <= before {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines after Close: %d, want <= %d", runtime.NumGoroutine(), before)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestScratchPoolRoundTrip(t *testing.T) {
	var pool scratchPool[float64]
	b := pool.get(100)
	if len(b) != 100 {
		t.Fatalf("got len %d, want 100", len(b))
	}
	pool.put(b)
	b2 := pool.get(128) // same size class (2^7)
	if len(b2) != 128 {
		t.Fatalf("got len %d, want 128", len(b2))
	}
	var pool32 scratchPool[float32]
	f := pool32.get(100)
	if len(f) != 100 {
		t.Fatalf("got float32 len %d, want 100", len(f))
	}
	pool32.put(f)
	f2 := pool32.get(128)
	if len(f2) != 128 {
		t.Fatalf("got float32 len %d, want 128", len(f2))
	}
}

func TestSizeClass(t *testing.T) {
	cases := []struct{ n, want int }{{1, 0}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {1024, 10}, {1025, 11}}
	for _, c := range cases {
		if got := sizeClass(c.n); got != c.want {
			t.Errorf("sizeClass(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestSerialBackend(t *testing.T) {
	var s Serial
	if s.Name() != "serial" || s.Workers() != 1 {
		t.Fatalf("unexpected identity %s/%d", s.Name(), s.Workers())
	}
	calls := 0
	s.For(10, 1, func(lo, hi int) {
		calls++
		if lo != 0 || hi != 10 {
			t.Fatalf("serial chunk [%d,%d), want [0,10)", lo, hi)
		}
	})
	if calls != 1 {
		t.Fatalf("serial For ran %d chunks, want 1", calls)
	}
	buf := s.Scratch(64)
	if len(buf) != 64 {
		t.Fatalf("scratch len %d, want 64", len(buf))
	}
	s.Release(buf)
	s.Close()
}
