// Package logging is the one slog configuration point for the nsbench
// binaries. Every command (nsserve, nsrouter, nsbench, nsprof) takes the
// same -log-format flag and builds its logger here, so structured output
// is uniform across the fleet: text for humans at a terminal, JSON for
// log pipelines — and a stitched-trace investigation can grep one field
// layout across router and replica logs.
package logging

import (
	"fmt"
	"io"
	"log/slog"
)

// Formats accepted by New.
const (
	FormatText = "text"
	FormatJSON = "json"
)

// New builds a logger writing to w in the given format ("text" or
// "json"; empty selects text). quiet returns a nil logger — the
// convention the serving stack uses for "logging disabled" — so callers
// can pass flag values through unconditionally.
func New(w io.Writer, format string, quiet bool) (*slog.Logger, error) {
	if quiet {
		return nil, nil
	}
	switch format {
	case "", FormatText:
		return slog.New(slog.NewTextHandler(w, nil)), nil
	case FormatJSON:
		return slog.New(slog.NewJSONHandler(w, nil)), nil
	default:
		return nil, fmt.Errorf("logging: unknown log format %q (want %s or %s)", format, FormatText, FormatJSON)
	}
}

// Setup builds the logger like New and, when logging is enabled, also
// installs it as the slog default so package-level slog calls in a binary
// agree with the logger it threads explicitly.
func Setup(w io.Writer, format string, quiet bool) (*slog.Logger, error) {
	logger, err := New(w, format, quiet)
	if err != nil {
		return nil, err
	}
	if logger != nil {
		slog.SetDefault(logger)
	}
	return logger, nil
}
