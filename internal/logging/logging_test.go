package logging

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestNewText(t *testing.T) {
	var buf bytes.Buffer
	for _, format := range []string{"", FormatText} {
		buf.Reset()
		logger, err := New(&buf, format, false)
		if err != nil {
			t.Fatalf("format %q: %v", format, err)
		}
		logger.Info("hello", "k", "v")
		line := buf.String()
		if !strings.Contains(line, "msg=hello") || !strings.Contains(line, "k=v") {
			t.Fatalf("format %q: text line = %q", format, line)
		}
	}
}

func TestNewJSON(t *testing.T) {
	var buf bytes.Buffer
	logger, err := New(&buf, FormatJSON, false)
	if err != nil {
		t.Fatal(err)
	}
	logger.Info("hello", "k", "v")
	var rec map[string]interface{}
	if err := json.Unmarshal(buf.Bytes(), &rec); err != nil {
		t.Fatalf("JSON line does not parse: %v (%q)", err, buf.String())
	}
	if rec["msg"] != "hello" || rec["k"] != "v" {
		t.Fatalf("JSON record = %v", rec)
	}
}

func TestNewQuiet(t *testing.T) {
	logger, err := New(&bytes.Buffer{}, FormatJSON, true)
	if err != nil || logger != nil {
		t.Fatalf("quiet = (%v, %v), want nil logger, nil error", logger, err)
	}
}

func TestNewUnknownFormat(t *testing.T) {
	if _, err := New(&bytes.Buffer{}, "yaml", false); err == nil {
		t.Fatal("unknown format accepted")
	}
}
