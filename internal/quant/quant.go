// Package quant implements the paper's algorithm-level optimization
// recommendations as executable ablations: INT8 affine quantization of
// tensors and kernels (Recommendation 3 — model compression to cut memory
// and data-movement overhead) and sparsity-aware execution of the
// probability tensors (Recommendation 7 — skip the zero mass that
// dominates NVSA's symbolic stages).
package quant

import (
	"fmt"
	"math"

	"github.com/neurosym/nsbench/internal/tensor"
)

// QTensor is an affine-quantized INT8 tensor: real ≈ scale * (q - zero).
type QTensor struct {
	Shape []int
	Data  []int8
	Scale float32
	Zero  int8
}

// Quantize converts a float tensor to INT8 with a symmetric range fitted
// to the tensor's min/max.
func Quantize(t *tensor.Tensor) *QTensor {
	q := &QTensor{
		Shape: append([]int(nil), t.Shape()...),
		Data:  make([]int8, t.Size()),
	}
	if t.Size() == 0 {
		q.Scale = 1
		return q
	}
	lo, hi := t.Min(), t.Max()
	// The representable range must include zero so the zero-point lands
	// inside [-128, 127] (the standard affine-quantization convention).
	if lo > 0 {
		lo = 0
	}
	if hi < 0 {
		hi = 0
	}
	if hi == lo {
		hi = lo + 1
	}
	q.Scale = (hi - lo) / 255
	zero := math.Round(float64(-128 - lo/q.Scale))
	if zero > 127 {
		zero = 127
	}
	if zero < -128 {
		zero = -128
	}
	q.Zero = int8(zero)
	for i, v := range t.Data() {
		iv := math.Round(float64(v/q.Scale)) + zero
		if iv > 127 {
			iv = 127
		}
		if iv < -128 {
			iv = -128
		}
		q.Data[i] = int8(iv)
	}
	return q
}

// Dequantize reconstructs the float tensor.
func (q *QTensor) Dequantize() *tensor.Tensor {
	t := tensor.New(q.Shape...)
	for i, v := range q.Data {
		t.Data()[i] = q.Scale * float32(int32(v)-int32(q.Zero))
	}
	return t
}

// Size returns the element count.
func (q *QTensor) Size() int { return len(q.Data) }

// Bytes returns the storage footprint (1 byte per element) — 4× smaller
// than the FP32 original, the memory saving of Recommendation 3.
func (q *QTensor) Bytes() int64 { return int64(len(q.Data)) }

// MaxAbsError returns the largest absolute reconstruction error vs t.
func MaxAbsError(t *tensor.Tensor, q *QTensor) float32 {
	d := q.Dequantize()
	var m float32
	for i, v := range t.Data() {
		e := v - d.Data()[i]
		if e < 0 {
			e = -e
		}
		if e > m {
			m = e
		}
	}
	return m
}

// MatVecQ computes y = A·x with INT8 inputs and INT32 accumulation,
// dequantizing the result — the quantized form of the codebook-cleanup
// kernel that dominates NVSA's symbolic phase.
func MatVecQ(a *QTensor, x *QTensor) *tensor.Tensor {
	if len(a.Shape) != 2 || len(x.Shape) != 1 || a.Shape[1] != x.Shape[0] {
		panic(fmt.Sprintf("quant: MatVecQ shape mismatch %v x %v", a.Shape, x.Shape))
	}
	m, k := a.Shape[0], a.Shape[1]
	out := tensor.New(m)
	// Precompute Σx and per-row Σa for the affine cross terms:
	// Σ s_a(a-z_a)·s_x(x-z_x) = s_a·s_x [Σ a·x - z_x Σa - z_a Σx + k·z_a·z_x].
	var sumX int32
	for _, v := range x.Data {
		sumX += int32(v)
	}
	za, zx := int32(a.Zero), int32(x.Zero)
	for i := 0; i < m; i++ {
		row := a.Data[i*k : (i+1)*k]
		var acc, sumA int32
		for j, v := range row {
			acc += int32(v) * int32(x.Data[j])
			sumA += int32(v)
		}
		corr := acc - zx*sumA - za*sumX + int32(k)*za*zx
		out.Data()[i] = a.Scale * x.Scale * float32(corr)
	}
	return out
}

// SparseVec is a sparsity-aware vector: only entries with |v| > eps are
// stored. It executes the element-wise kernels of the symbolic stages
// touching only non-zero mass (Recommendation 7).
type SparseVec struct {
	N   int
	Idx []int
	Val []float32
}

// ToSparse compresses a vector, dropping entries with |v| <= eps.
func ToSparse(t *tensor.Tensor, eps float32) *SparseVec {
	if t.Rank() != 1 {
		panic(fmt.Sprintf("quant: ToSparse needs a vector, got %v", t.Shape()))
	}
	s := &SparseVec{N: t.Dim(0)}
	for i, v := range t.Data() {
		if v > eps || v < -eps {
			s.Idx = append(s.Idx, i)
			s.Val = append(s.Val, v)
		}
	}
	return s
}

// ToDense reconstructs the dense vector.
func (s *SparseVec) ToDense() *tensor.Tensor {
	t := tensor.New(s.N)
	for k, i := range s.Idx {
		t.Data()[i] = s.Val[k]
	}
	return t
}

// NNZ returns the stored entry count.
func (s *SparseVec) NNZ() int { return len(s.Val) }

// Bytes returns the storage footprint (index + value per entry).
func (s *SparseVec) Bytes() int64 { return int64(len(s.Val)) * 8 }

// MulSparse computes the element-wise product of two sparse vectors via an
// index merge — the sparsity-aware form of the probability products in the
// abduction stages. Work is O(nnz_a + nnz_b) instead of O(n).
func MulSparse(a, b *SparseVec) *SparseVec {
	if a.N != b.N {
		panic(fmt.Sprintf("quant: MulSparse length mismatch %d vs %d", a.N, b.N))
	}
	out := &SparseVec{N: a.N}
	i, j := 0, 0
	for i < len(a.Idx) && j < len(b.Idx) {
		switch {
		case a.Idx[i] == b.Idx[j]:
			out.Idx = append(out.Idx, a.Idx[i])
			out.Val = append(out.Val, a.Val[i]*b.Val[j])
			i++
			j++
		case a.Idx[i] < b.Idx[j]:
			i++
		default:
			j++
		}
	}
	return out
}

// DotSparse computes the inner product of two sparse vectors.
func DotSparse(a, b *SparseVec) float32 {
	var s float64
	i, j := 0, 0
	for i < len(a.Idx) && j < len(b.Idx) {
		switch {
		case a.Idx[i] == b.Idx[j]:
			s += float64(a.Val[i]) * float64(b.Val[j])
			i++
			j++
		case a.Idx[i] < b.Idx[j]:
			i++
		default:
			j++
		}
	}
	return float32(s)
}

// JointSparse computes the joint distribution of two sparse PMFs: the
// sparsity-aware analogue of abduction.Joint, with O(nnz_a · nnz_b) work
// instead of O(n_a · n_b) — the FLOP and traffic reduction Recommendation 7
// projects for the >95%-sparse probability tensors.
func JointSparse(a, b *SparseVec) *SparseVec {
	out := &SparseVec{N: a.N * b.N}
	for i, ai := range a.Idx {
		for j, bj := range b.Idx {
			out.Idx = append(out.Idx, ai*b.N+bj)
			out.Val = append(out.Val, a.Val[i]*b.Val[j])
		}
	}
	return out
}

// Savings quantifies an ablation: the dense and optimized byte/op counts.
type Savings struct {
	DenseBytes, OptBytes int64
	DenseOps, OptOps     int64
}

// BytesReductionX returns the footprint reduction factor.
func (s Savings) BytesReductionX() float64 {
	if s.OptBytes == 0 {
		return 0
	}
	return float64(s.DenseBytes) / float64(s.OptBytes)
}

// OpsReductionX returns the work reduction factor.
func (s Savings) OpsReductionX() float64 {
	if s.OptOps == 0 {
		return 0
	}
	return float64(s.DenseOps) / float64(s.OptOps)
}

// JointSavings computes the dense-vs-sparse cost of one joint expansion.
func JointSavings(a, b *SparseVec) Savings {
	return Savings{
		DenseBytes: int64(a.N+b.N+a.N*b.N) * 4,
		OptBytes:   a.Bytes() + b.Bytes() + int64(a.NNZ()*b.NNZ())*8,
		DenseOps:   int64(a.N) * int64(b.N),
		OptOps:     int64(a.NNZ()) * int64(b.NNZ()),
	}
}

// QuantSavings computes the dense-vs-INT8 cost of one codebook cleanup.
func QuantSavings(rows, cols int) Savings {
	return Savings{
		DenseBytes: int64(rows)*int64(cols)*4 + int64(cols)*4 + int64(rows)*4,
		OptBytes:   int64(rows)*int64(cols) + int64(cols) + int64(rows)*4,
		DenseOps:   2 * int64(rows) * int64(cols),
		OptOps:     2 * int64(rows) * int64(cols), // same ops, quarter traffic
	}
}
