package quant

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"github.com/neurosym/nsbench/internal/tensor"
)

func TestQuantizeRoundTripError(t *testing.T) {
	g := tensor.NewRNG(1)
	x := g.Normal(0, 1, 1000)
	q := Quantize(x)
	// Reconstruction error bounded by one quantization step.
	if e := MaxAbsError(x, q); e > q.Scale {
		t.Fatalf("max error %v exceeds one step %v", e, q.Scale)
	}
	if q.Bytes()*4 != x.Bytes() {
		t.Fatalf("INT8 must be 4x smaller: %d vs %d", q.Bytes(), x.Bytes())
	}
}

func TestQuantizeConstantTensor(t *testing.T) {
	x := tensor.Full(3, 8)
	q := Quantize(x)
	d := q.Dequantize()
	for _, v := range d.Data() {
		if v < 2.9 || v > 3.1 {
			t.Fatalf("constant reconstruction = %v", v)
		}
	}
}

func TestQuantizeEmpty(t *testing.T) {
	q := Quantize(tensor.New(0))
	if q.Size() != 0 || q.Scale != 1 {
		t.Fatalf("empty quantization = %+v", q)
	}
}

func TestMatVecQMatchesFloat(t *testing.T) {
	g := tensor.NewRNG(2)
	a := g.Normal(0, 1, 32, 64)
	x := g.Normal(0, 1, 64)
	want := tensor.MatVec(a, x)
	got := MatVecQ(Quantize(a), Quantize(x))
	// INT8 GEMV tolerates ~1% relative error on unit-normal data.
	for i := range want.Data() {
		diff := float64(got.Data()[i] - want.Data()[i])
		if diff > 0.5 || diff < -0.5 {
			t.Fatalf("MatVecQ[%d] = %v, want %v", i, got.Data()[i], want.Data()[i])
		}
	}
}

func TestMatVecQShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MatVecQ(Quantize(tensor.New(2, 3)), Quantize(tensor.New(4)))
}

func TestSparseRoundTrip(t *testing.T) {
	x := tensor.FromSlice([]float32{0, 0.5, 0, 0, -0.25, 0, 0, 0}, 8)
	s := ToSparse(x, 1e-6)
	if s.NNZ() != 2 {
		t.Fatalf("NNZ = %d", s.NNZ())
	}
	back := s.ToDense()
	for i := range x.Data() {
		if back.Data()[i] != x.Data()[i] {
			t.Fatal("sparse round trip failed")
		}
	}
}

func TestMulSparseMatchesDense(t *testing.T) {
	g := tensor.NewRNG(3)
	a := g.Normal(0, 1, 64)
	b := g.Normal(0, 1, 64)
	// Sparsify both.
	for i := 0; i < 64; i++ {
		if i%3 != 0 {
			a.Data()[i] = 0
		}
		if i%4 != 0 {
			b.Data()[i] = 0
		}
	}
	want := tensor.Mul(a, b)
	got := MulSparse(ToSparse(a, 0), ToSparse(b, 0)).ToDense()
	for i := range want.Data() {
		if got.Data()[i] != want.Data()[i] {
			t.Fatalf("MulSparse[%d] = %v, want %v", i, got.Data()[i], want.Data()[i])
		}
	}
	if d, w := DotSparse(ToSparse(a, 0), ToSparse(b, 0)), tensor.Dot(a, b); d-w > 1e-5 || w-d > 1e-5 {
		t.Fatalf("DotSparse = %v, want %v", d, w)
	}
}

func TestJointSparseMatchesDenseJoint(t *testing.T) {
	a := tensor.FromSlice([]float32{0.9, 0, 0.1}, 3)
	b := tensor.FromSlice([]float32{0, 1, 0, 0}, 4)
	s := JointSparse(ToSparse(a, 0), ToSparse(b, 0))
	if s.N != 12 || s.NNZ() != 2 {
		t.Fatalf("joint sparse = %+v", s)
	}
	d := s.ToDense()
	if d.At(0*4+1) != 0.9 || d.At(2*4+1) != 0.1 {
		t.Fatalf("joint values = %v", d.Data())
	}
}

func TestSavingsFactors(t *testing.T) {
	a := ToSparse(tensor.OneHot(0, 10), 0)
	b := ToSparse(tensor.OneHot(3, 30), 0)
	s := JointSavings(a, b)
	if s.OpsReductionX() != 300 { // 10*30 dense vs 1 sparse op
		t.Fatalf("ops reduction = %v", s.OpsReductionX())
	}
	if s.BytesReductionX() < 10 {
		t.Fatalf("bytes reduction = %v", s.BytesReductionX())
	}
	q := QuantSavings(2700, 4096)
	if r := q.BytesReductionX(); r < 3.9 || r > 4.1 {
		t.Fatalf("quant bytes reduction = %v, want ~4", r)
	}
}

// sparseVecGen drives the property tests.
type sparseVecGen []float32

func (sparseVecGen) Generate(r *rand.Rand, size int) reflect.Value {
	n := 1 + r.Intn(64)
	v := make(sparseVecGen, n)
	for i := range v {
		if r.Float64() < 0.2 { // mostly zero, like PMFs
			v[i] = float32(r.NormFloat64())
		}
	}
	return reflect.ValueOf(v)
}

func TestPropSparseDenseAgree(t *testing.T) {
	f := func(av, bv sparseVecGen) bool {
		n := len(av)
		if len(bv) < n {
			n = len(bv)
		}
		if n == 0 {
			return true
		}
		a := tensor.FromSlice(append([]float32(nil), av[:n]...), n)
		b := tensor.FromSlice(append([]float32(nil), bv[:n]...), n)
		want := tensor.Mul(a, b)
		got := MulSparse(ToSparse(a, 0), ToSparse(b, 0)).ToDense()
		for i := range want.Data() {
			if got.Data()[i] != want.Data()[i] {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(4))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestPropQuantErrorBounded(t *testing.T) {
	f := func(v sparseVecGen) bool {
		if len(v) == 0 {
			return true
		}
		x := tensor.FromSlice(append([]float32(nil), v...), len(v))
		q := Quantize(x)
		return MaxAbsError(x, q) <= q.Scale*1.001
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(5))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
