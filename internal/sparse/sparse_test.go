package sparse

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"github.com/neurosym/nsbench/internal/tensor"
)

func TestCOOBasics(t *testing.T) {
	m := NewCOO(3, 4)
	m.Append(0, 0, 1)
	m.Append(2, 3, 2)
	if m.NNZ() != 2 {
		t.Fatalf("NNZ = %d", m.NNZ())
	}
	if m.Density() != 2.0/12 {
		t.Fatalf("Density = %v", m.Density())
	}
	d := m.ToDense()
	if d.At(0, 0) != 1 || d.At(2, 3) != 2 || d.At(1, 1) != 0 {
		t.Fatalf("ToDense = %v", d.Data())
	}
}

func TestCOOOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewCOO(2, 2).Append(2, 0, 1)
}

func TestCoalesceMergesDuplicates(t *testing.T) {
	m := NewCOO(2, 2)
	m.Append(1, 1, 1)
	m.Append(0, 0, 2)
	m.Append(1, 1, 3)
	m.Append(0, 0, 4)
	merged := m.Coalesce()
	if merged != 2 {
		t.Fatalf("merged = %d, want 2", merged)
	}
	if m.NNZ() != 2 {
		t.Fatalf("NNZ after coalesce = %d", m.NNZ())
	}
	d := m.ToDense()
	if d.At(0, 0) != 6 || d.At(1, 1) != 4 {
		t.Fatalf("coalesced values wrong: %v", d.Data())
	}
	// Entries must now be sorted by (row, col).
	for i := 1; i < m.NNZ(); i++ {
		if m.Row[i-1] > m.Row[i] || (m.Row[i-1] == m.Row[i] && m.Col[i-1] >= m.Col[i]) {
			t.Fatal("coalesced entries not sorted")
		}
	}
}

func TestFromDenseRoundTrip(t *testing.T) {
	g := tensor.NewRNG(3)
	d := g.Normal(0, 1, 5, 7)
	// Zero some entries.
	for i := 0; i < d.Size(); i += 3 {
		d.Data()[i] = 0
	}
	m := FromDense(d, 0)
	back := m.ToDense()
	for i := range d.Data() {
		if back.Data()[i] != d.Data()[i] {
			t.Fatal("FromDense/ToDense round trip failed")
		}
	}
}

func TestCSRSpMVMatchesDense(t *testing.T) {
	g := tensor.NewRNG(4)
	d := g.Normal(0, 1, 6, 5)
	for i := 0; i < d.Size(); i += 2 {
		d.Data()[i] = 0
	}
	csr := FromDense(d, 0).ToCSR()
	x := g.Normal(0, 1, 5)
	got := csr.SpMV(x)
	want := tensor.MatVec(d, x)
	for i := range want.Data() {
		diff := got.Data()[i] - want.Data()[i]
		if diff > 1e-4 || diff < -1e-4 {
			t.Fatalf("SpMV[%d] = %v, want %v", i, got.Data()[i], want.Data()[i])
		}
	}
}

func TestCSRSpMMMatchesDense(t *testing.T) {
	g := tensor.NewRNG(5)
	d := g.Normal(0, 1, 4, 6)
	for i := 0; i < d.Size(); i += 3 {
		d.Data()[i] = 0
	}
	csr := FromDense(d, 0).ToCSR()
	b := g.Normal(0, 1, 6, 3)
	got := csr.SpMM(b)
	want := tensor.MatMul(d, b)
	for i := range want.Data() {
		diff := got.Data()[i] - want.Data()[i]
		if diff > 1e-4 || diff < -1e-4 {
			t.Fatalf("SpMM[%d] = %v, want %v", i, got.Data()[i], want.Data()[i])
		}
	}
}

func TestSDDMM(t *testing.T) {
	// Pattern with ones at (0,0) and (1,2); A·Bᵀ sampled there.
	p := NewCOO(2, 3)
	p.Append(0, 0, 1)
	p.Append(1, 2, 2)
	csr := p.ToCSR()
	a := tensor.FromSlice([]float32{1, 2, 3, 4}, 2, 2)       // rows of A
	b := tensor.FromSlice([]float32{1, 0, 0, 1, 1, 1}, 3, 2) // rows of B
	out := csr.SDDMM(a, b)
	// (A·Bᵀ)(0,0) = 1*1+2*0 = 1; times pattern 1 → 1.
	// (A·Bᵀ)(1,2) = 3*1+4*1 = 7; times pattern 2 → 14.
	dense := out.ToDense()
	if dense.At(0, 0) != 1 || dense.At(1, 2) != 14 {
		t.Fatalf("SDDMM = %v", dense.Data())
	}
}

func TestCSRDensity(t *testing.T) {
	m := NewCOO(10, 10)
	for i := 0; i < 10; i++ {
		m.Append(i, i, 1)
	}
	c := m.ToCSR()
	if c.NNZ() != 10 || c.Density() != 0.1 {
		t.Fatalf("CSR NNZ/Density = %d/%v", c.NNZ(), c.Density())
	}
}

func TestFlopBytes(t *testing.T) {
	if FlopsSpMM(10, 4) != 80 {
		t.Fatalf("FlopsSpMM = %d", FlopsSpMM(10, 4))
	}
	if BytesSpMM(10, 5, 4) != 10*8+10*4*4+5*4*4 {
		t.Fatalf("BytesSpMM = %d", BytesSpMM(10, 5, 4))
	}
}

// randMatrix drives the property test with random sparse matrices.
type randMatrix struct {
	Rows, Cols int
	Entries    [][3]int // r, c, scaled value
}

func (randMatrix) Generate(r *rand.Rand, size int) reflect.Value {
	rows := 1 + r.Intn(8)
	cols := 1 + r.Intn(8)
	n := r.Intn(20)
	entries := make([][3]int, n)
	for i := range entries {
		entries[i] = [3]int{r.Intn(rows), r.Intn(cols), r.Intn(9) - 4}
	}
	return reflect.ValueOf(randMatrix{rows, cols, entries})
}

func TestPropCoalescePreservesSum(t *testing.T) {
	f := func(rm randMatrix) bool {
		m := NewCOO(rm.Rows, rm.Cols)
		var want float64
		for _, e := range rm.Entries {
			m.Append(e[0], e[1], float32(e[2]))
			want += float64(e[2])
		}
		m.Coalesce()
		var got float64
		for _, v := range m.Val {
			got += float64(v)
		}
		return got == want
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(2))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestPropDenseSparseAgree(t *testing.T) {
	f := func(rm randMatrix) bool {
		m := NewCOO(rm.Rows, rm.Cols)
		for _, e := range rm.Entries {
			m.Append(e[0], e[1], float32(e[2]))
		}
		dense := m.ToDense()
		csr := m.ToCSR()
		back := csr.ToDense()
		for i := range dense.Data() {
			if dense.Data()[i] != back.Data()[i] {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(3))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
