// Package sparse implements COO and CSR sparse matrices over float32.
//
// Sparse kernels back the GNN-style operators named in the paper's Table I
// (SpMM, SDDMM) and the "coalescing" data-transformation operator described
// in its characterization taxonomy (Sec. IV-B).
package sparse

import (
	"fmt"
	"sort"

	"github.com/neurosym/nsbench/internal/tensor"
)

// COO is a coordinate-format sparse matrix. Entries may be unsorted and may
// contain duplicates until Coalesce is called.
type COO struct {
	Rows, Cols int
	Row, Col   []int
	Val        []float32
}

// NewCOO returns an empty rows×cols COO matrix.
func NewCOO(rows, cols int) *COO {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("sparse: negative dimensions %dx%d", rows, cols))
	}
	return &COO{Rows: rows, Cols: cols}
}

// Append adds an entry. Out-of-range coordinates panic.
func (m *COO) Append(r, c int, v float32) {
	if r < 0 || r >= m.Rows || c < 0 || c >= m.Cols {
		panic(fmt.Sprintf("sparse: entry (%d,%d) out of range for %dx%d", r, c, m.Rows, m.Cols))
	}
	m.Row = append(m.Row, r)
	m.Col = append(m.Col, c)
	m.Val = append(m.Val, v)
}

// NNZ returns the stored entry count (including duplicates before Coalesce).
func (m *COO) NNZ() int { return len(m.Val) }

// Density returns NNZ / (rows*cols), or 0 for degenerate shapes.
func (m *COO) Density() float64 {
	n := m.Rows * m.Cols
	if n == 0 {
		return 0
	}
	return float64(m.NNZ()) / float64(n)
}

// Coalesce sorts entries by (row, col) and sums duplicates, in place.
// This is the "coalescing" operator of the paper's data-transformation
// category. It returns the number of duplicate entries merged.
func (m *COO) Coalesce() int {
	n := len(m.Val)
	if n == 0 {
		return 0
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		ia, ib := idx[a], idx[b]
		if m.Row[ia] != m.Row[ib] {
			return m.Row[ia] < m.Row[ib]
		}
		return m.Col[ia] < m.Col[ib]
	})
	newRow := make([]int, 0, n)
	newCol := make([]int, 0, n)
	newVal := make([]float32, 0, n)
	merged := 0
	for _, i := range idx {
		last := len(newVal) - 1
		if last >= 0 && newRow[last] == m.Row[i] && newCol[last] == m.Col[i] {
			newVal[last] += m.Val[i]
			merged++
			continue
		}
		newRow = append(newRow, m.Row[i])
		newCol = append(newCol, m.Col[i])
		newVal = append(newVal, m.Val[i])
	}
	m.Row, m.Col, m.Val = newRow, newCol, newVal
	return merged
}

// ToDense materializes the matrix as a dense tensor (duplicates are summed).
func (m *COO) ToDense() *tensor.Tensor {
	t := tensor.New(m.Rows, m.Cols)
	d := t.Data()
	for i, v := range m.Val {
		d[m.Row[i]*m.Cols+m.Col[i]] += v
	}
	return t
}

// FromDense converts a dense rank-2 tensor to COO, keeping entries with
// |v| > eps.
func FromDense(t *tensor.Tensor, eps float32) *COO {
	if t.Rank() != 2 {
		panic(fmt.Sprintf("sparse: FromDense needs rank-2 tensor, got %v", t.Shape()))
	}
	rows, cols := t.Dim(0), t.Dim(1)
	m := NewCOO(rows, cols)
	d := t.Data()
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			v := d[r*cols+c]
			if v > eps || v < -eps {
				m.Append(r, c, v)
			}
		}
	}
	return m
}

// CSR is a compressed-sparse-row matrix with sorted column indices per row.
type CSR struct {
	Rows, Cols int
	RowPtr     []int
	Col        []int
	Val        []float32
}

// ToCSR converts a COO matrix to CSR. The COO is coalesced first (on a copy
// of the index slices' order; the receiver is modified by Coalesce).
func (m *COO) ToCSR() *CSR {
	m.Coalesce()
	c := &CSR{
		Rows:   m.Rows,
		Cols:   m.Cols,
		RowPtr: make([]int, m.Rows+1),
		Col:    append([]int(nil), m.Col...),
		Val:    append([]float32(nil), m.Val...),
	}
	for _, r := range m.Row {
		c.RowPtr[r+1]++
	}
	for i := 0; i < m.Rows; i++ {
		c.RowPtr[i+1] += c.RowPtr[i]
	}
	return c
}

// NNZ returns the stored entry count.
func (c *CSR) NNZ() int { return len(c.Val) }

// Density returns NNZ / (rows*cols).
func (c *CSR) Density() float64 {
	n := c.Rows * c.Cols
	if n == 0 {
		return 0
	}
	return float64(c.NNZ()) / float64(n)
}

// SpMM computes the sparse-dense product c × b where b is a dense
// Cols×n tensor, returning a dense Rows×n tensor.
func (c *CSR) SpMM(b *tensor.Tensor) *tensor.Tensor {
	if b.Rank() != 2 || b.Dim(0) != c.Cols {
		panic(fmt.Sprintf("sparse: SpMM dimension mismatch %dx%d times %v", c.Rows, c.Cols, b.Shape()))
	}
	n := b.Dim(1)
	out := tensor.New(c.Rows, n)
	bd, od := b.Data(), out.Data()
	for r := 0; r < c.Rows; r++ {
		orow := od[r*n : (r+1)*n]
		for p := c.RowPtr[r]; p < c.RowPtr[r+1]; p++ {
			v := c.Val[p]
			brow := bd[c.Col[p]*n : (c.Col[p]+1)*n]
			for j := range orow {
				orow[j] += v * brow[j]
			}
		}
	}
	return out
}

// SpMV computes the sparse matrix-vector product c × x.
func (c *CSR) SpMV(x *tensor.Tensor) *tensor.Tensor {
	if x.Rank() != 1 || x.Dim(0) != c.Cols {
		panic(fmt.Sprintf("sparse: SpMV dimension mismatch %dx%d times %v", c.Rows, c.Cols, x.Shape()))
	}
	out := tensor.New(c.Rows)
	xd, od := x.Data(), out.Data()
	for r := 0; r < c.Rows; r++ {
		var s float64
		for p := c.RowPtr[r]; p < c.RowPtr[r+1]; p++ {
			s += float64(c.Val[p]) * float64(xd[c.Col[p]])
		}
		od[r] = float32(s)
	}
	return out
}

// SDDMM computes the sampled dense-dense matrix multiplication: for each
// stored position (r,c) of the sparsity pattern, out(r,c) = pattern(r,c) *
// (A·Bᵀ)(r,c), where a is Rows×k and b is Cols×k. This is the
// attention-style operator listed for GNN+attention in the paper's Table I.
func (c *CSR) SDDMM(a, b *tensor.Tensor) *CSR {
	if a.Rank() != 2 || b.Rank() != 2 || a.Dim(0) != c.Rows || b.Dim(0) != c.Cols || a.Dim(1) != b.Dim(1) {
		panic(fmt.Sprintf("sparse: SDDMM shape mismatch pattern %dx%d, a %v, b %v", c.Rows, c.Cols, a.Shape(), b.Shape()))
	}
	k := a.Dim(1)
	out := &CSR{
		Rows:   c.Rows,
		Cols:   c.Cols,
		RowPtr: append([]int(nil), c.RowPtr...),
		Col:    append([]int(nil), c.Col...),
		Val:    make([]float32, len(c.Val)),
	}
	ad, bd := a.Data(), b.Data()
	for r := 0; r < c.Rows; r++ {
		arow := ad[r*k : (r+1)*k]
		for p := c.RowPtr[r]; p < c.RowPtr[r+1]; p++ {
			brow := bd[c.Col[p]*k : (c.Col[p]+1)*k]
			var s float64
			for i := range arow {
				s += float64(arow[i]) * float64(brow[i])
			}
			out.Val[p] = c.Val[p] * float32(s)
		}
	}
	return out
}

// ToDense materializes the CSR matrix as a dense tensor.
func (c *CSR) ToDense() *tensor.Tensor {
	t := tensor.New(c.Rows, c.Cols)
	d := t.Data()
	for r := 0; r < c.Rows; r++ {
		for p := c.RowPtr[r]; p < c.RowPtr[r+1]; p++ {
			d[r*c.Cols+c.Col[p]] = c.Val[p]
		}
	}
	return t
}

// FlopsSpMM returns the FLOP count of an SpMM with the given NNZ and dense
// width n (one multiply-add per stored entry per output column).
func FlopsSpMM(nnz, n int) int64 { return 2 * int64(nnz) * int64(n) }

// BytesSpMM returns the algorithmic traffic of an SpMM: index+value reads
// for every stored entry, a dense row read per entry, and the output write.
func BytesSpMM(nnz, rows, n int) int64 {
	return int64(nnz)*(4+4) + int64(nnz)*int64(n)*4 + int64(rows)*int64(n)*4
}
