// Batched sparse kernels: the SDDMM / SpMM pair with a leading batch
// dimension, chunked over a Runner like the dense kernels in
// internal/tensor. The batch is laid out as n stacked row blocks in the
// dense operands — item i owns rows [i*Rows, (i+1)*Rows) — while the
// sparsity pattern is shared across items, which is exactly the serving
// case: one knowledge graph, many concurrent queries.
package sparse

import (
	"fmt"

	"github.com/neurosym/nsbench/internal/tensor"
)

// minChunkFlops mirrors the dense-kernel chunking floor: chunks below it
// cost more to dispatch than to compute.
const minChunkFlops = 32 * 1024

// grainFor converts a per-row flop estimate into a chunk grain.
func grainFor(perRowFlops int64) int {
	if perRowFlops <= 0 {
		perRowFlops = 1
	}
	g := int64(minChunkFlops) / perRowFlops
	if g < 1 {
		return 1
	}
	return int(g)
}

// SDDMMBatchOn computes batch independent SDDMMs sharing one sparsity
// pattern. a is (batch*pattern.Rows)×k and b is (batch*pattern.Cols)×k;
// the result for item i samples A_i·B_iᵀ at the pattern's stored
// positions. All outputs alias the pattern's RowPtr/Col slices (they are
// read-only); each row is accumulated in the same order as CSR.SDDMM, so
// item results are bit-identical to solo calls.
func SDDMMBatchOn(r tensor.Runner, pattern *CSR, a, b *tensor.Tensor, batch int) []*CSR {
	if batch < 1 {
		panic(fmt.Sprintf("sparse: SDDMMBatchOn batch %d", batch))
	}
	if a.Rank() != 2 || b.Rank() != 2 || a.Dim(0) != batch*pattern.Rows || b.Dim(0) != batch*pattern.Cols || a.Dim(1) != b.Dim(1) {
		panic(fmt.Sprintf("sparse: SDDMMBatchOn shape mismatch pattern %dx%d (batch %d), a %v, b %v",
			pattern.Rows, pattern.Cols, batch, a.Shape(), b.Shape()))
	}
	k := a.Dim(1)
	rowPtr := append([]int(nil), pattern.RowPtr...)
	col := append([]int(nil), pattern.Col...)
	outs := make([]*CSR, batch)
	for i := range outs {
		outs[i] = &CSR{
			Rows:   pattern.Rows,
			Cols:   pattern.Cols,
			RowPtr: rowPtr,
			Col:    col,
			Val:    make([]float32, len(pattern.Val)),
		}
	}
	ad, bd := a.Data(), b.Data()
	rows := pattern.Rows
	nnzPerRow := int64(1)
	if rows > 0 {
		nnzPerRow = int64(pattern.NNZ())/int64(rows) + 1
	}
	r.For(batch*rows, grainFor(2*nnzPerRow*int64(k)), func(lo, hi int) {
		for idx := lo; idx < hi; idx++ {
			item, row := idx/rows, idx%rows
			out := outs[item]
			arow := ad[(item*rows+row)*k : (item*rows+row+1)*k]
			for p := pattern.RowPtr[row]; p < pattern.RowPtr[row+1]; p++ {
				bbase := (item*pattern.Cols + pattern.Col[p]) * k
				brow := bd[bbase : bbase+k]
				var s float64
				for i := range arow {
					s += float64(arow[i]) * float64(brow[i])
				}
				out.Val[p] = pattern.Val[p] * float32(s)
			}
		}
	})
	return outs
}

// SpMMBatchOn multiplies each of the batch sparse matrices (which must
// share dimensions) with its row block of the dense operand: b is
// (batch*Cols)×w and the result is (batch*Rows)×w, item i occupying rows
// [i*Rows, (i+1)*Rows). Per-row accumulation order matches CSR.SpMM.
func SpMMBatchOn(r tensor.Runner, mats []*CSR, b *tensor.Tensor) *tensor.Tensor {
	batch := len(mats)
	if batch == 0 {
		panic("sparse: SpMMBatchOn of no matrices")
	}
	rows, cols := mats[0].Rows, mats[0].Cols
	var nnz int64
	for _, m := range mats {
		if m.Rows != rows || m.Cols != cols {
			panic(fmt.Sprintf("sparse: SpMMBatchOn dimension mismatch %dx%d vs %dx%d", m.Rows, m.Cols, rows, cols))
		}
		nnz += int64(m.NNZ())
	}
	if b.Rank() != 2 || b.Dim(0) != batch*cols {
		panic(fmt.Sprintf("sparse: SpMMBatchOn dense operand %v for %d×(%dx%d)", b.Shape(), batch, rows, cols))
	}
	w := b.Dim(1)
	out := tensor.New(batch*rows, w)
	bd, od := b.Data(), out.Data()
	perRow := int64(1)
	if rows > 0 {
		perRow = nnz/int64(batch*rows)*2*int64(w) + 1
	}
	r.For(batch*rows, grainFor(perRow), func(lo, hi int) {
		for idx := lo; idx < hi; idx++ {
			item, row := idx/rows, idx%rows
			m := mats[item]
			orow := od[idx*w : (idx+1)*w]
			for p := m.RowPtr[row]; p < m.RowPtr[row+1]; p++ {
				v := m.Val[p]
				bbase := (item*cols + m.Col[p]) * w
				brow := bd[bbase : bbase+w]
				for j := range orow {
					orow[j] += v * brow[j]
				}
			}
		}
	})
	return out
}
