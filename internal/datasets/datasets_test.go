package datasets

import (
	"testing"

	"github.com/neurosym/nsbench/internal/logic"
	"github.com/neurosym/nsbench/internal/tensor"
)

func TestGenKnowledgeBase(t *testing.T) {
	g := tensor.NewRNG(1)
	kb := GenKnowledgeBase(30, g)
	if len(kb.Constants) != 30 {
		t.Fatalf("constants = %d", len(kb.Constants))
	}
	if kb.Facts.Len() == 0 || len(kb.Rules) != 5 || len(kb.Queries) == 0 {
		t.Fatalf("kb incomplete: facts=%d rules=%d queries=%d", kb.Facts.Len(), len(kb.Rules), len(kb.Queries))
	}
	// Every professor asserted is a person.
	if kb.Facts.Truth("person", []string{"prof0"}) != 1 {
		t.Fatal("prof0 should be a person")
	}
	// Rules must be well-formed closed formulas.
	for _, r := range kb.Rules {
		if fv := logic.FreeVars(r); len(fv) != 0 {
			t.Fatalf("rule %s has free vars %v", r, fv)
		}
	}
}

func TestGenKnowledgeBaseMinimumSize(t *testing.T) {
	kb := GenKnowledgeBase(1, tensor.NewRNG(2))
	if len(kb.Constants) < 6 {
		t.Fatalf("minimum size not enforced: %d", len(kb.Constants))
	}
}

func TestGenTabular(t *testing.T) {
	g := tensor.NewRNG(3)
	tab := GenTabular(100, 4, 3, g)
	if tab.X.Dim(0) != 100 || tab.X.Dim(1) != 4 || len(tab.Y) != 100 {
		t.Fatalf("tabular shape wrong: %v", tab.X.Shape())
	}
	seen := map[int]bool{}
	for _, y := range tab.Y {
		if y < 0 || y >= 3 {
			t.Fatalf("label out of range: %d", y)
		}
		seen[y] = true
	}
	if len(seen) != 3 {
		t.Fatalf("not all classes present: %v", seen)
	}
}

func TestGenFamilyGraph(t *testing.T) {
	g := tensor.NewRNG(4)
	f := GenFamilyGraph(20, g)
	// Every non-root person has at least one parent.
	for child := 1; child < f.N; child++ {
		has := false
		for p := 0; p < f.N; p++ {
			if f.Parent[p][child] {
				has = true
			}
		}
		if !has {
			t.Fatalf("person %d has no parent", child)
		}
	}
	// Parent relation must be acyclic (parents precede children by construction).
	for a := 0; a < f.N; a++ {
		for b := 0; b <= a; b++ {
			if f.Parent[a][b] {
				t.Fatalf("parent edge %d→%d violates generation order", a, b)
			}
		}
	}
}

func TestGrandparentComposition(t *testing.T) {
	f := &FamilyGraph{N: 3, Parent: [][]bool{
		{false, true, false},
		{false, false, true},
		{false, false, false},
	}}
	gp := f.Grandparent()
	if !gp[0][2] {
		t.Fatal("0 should be grandparent of 2")
	}
	if gp[0][1] || gp[1][2] {
		t.Fatal("direct parents are not grandparents")
	}
}

func TestGenSorting(t *testing.T) {
	g := tensor.NewRNG(5)
	s := GenSorting(16, g)
	if len(s.Values) != 16 {
		t.Fatalf("sorting size = %d", len(s.Values))
	}
	// Values distinct.
	seen := map[float32]bool{}
	for _, v := range s.Values {
		if seen[v] {
			t.Fatal("duplicate values")
		}
		seen[v] = true
	}
}

func TestGenImagePair(t *testing.T) {
	g := tensor.NewRNG(6)
	p := GenImagePair(32, 5, g)
	if p.Source.Dim(2) != 32 || p.Target.Dim(1) != 3 {
		t.Fatalf("image shapes: %v %v", p.Source.Shape(), p.Target.Shape())
	}
	// Domains must differ in appearance statistics.
	if d := p.Target.Mean() - p.Source.Mean(); d < 0.05 {
		t.Fatalf("domain gap too small: %v", d)
	}
}

func TestGenConceptGrid(t *testing.T) {
	g := tensor.NewRNG(7)
	for _, name := range ConceptNames() {
		c := GenConceptGrid(32, name, g)
		if c.Image.Sum() <= 0 {
			t.Fatalf("concept %s rendered blank", name)
		}
		if c.Concept != name {
			t.Fatalf("concept label = %s", c.Concept)
		}
	}
}

func TestGenConceptGridUnknownPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	GenConceptGrid(16, "spiral", tensor.NewRNG(8))
}

func TestConceptsDistinguishable(t *testing.T) {
	g := tensor.NewRNG(9)
	a := GenConceptGrid(32, "rect", g)
	b := GenConceptGrid(32, "cross", g)
	same := true
	for i := range a.Image.Data() {
		if a.Image.Data()[i] != b.Image.Data()[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different concepts rendered identically")
	}
}
