// Package datasets generates the synthetic evaluation data for the
// workloads that are not RPM-based: knowledge bases for LNN (LUBM/TPTP
// stand-in), tabular groundings for LTN (UCI stand-in), family graphs and
// sorting instances for NLM, unpaired image pairs for VSAIT
// (GTA/Cityscapes stand-in), and hierarchical concept grids for ZeroC.
//
// Sizes and structure follow the source papers' configurations scaled to
// laptop scale; only shapes and access patterns matter for the
// characterization (see DESIGN.md, substitutions).
package datasets

import (
	"fmt"

	"github.com/neurosym/nsbench/internal/logic"
	"github.com/neurosym/nsbench/internal/tensor"
)

// KnowledgeBase is a typed universe with asserted facts and FOL rules,
// shaped like a miniature LUBM benchmark instance.
type KnowledgeBase struct {
	Constants []string
	Facts     *logic.FactBase
	Rules     []logic.Formula
	// Queries are ground atoms whose truth the reasoner must derive.
	Queries []logic.Formula
}

// GenKnowledgeBase builds a university-domain KB with n entities:
// professors, students, courses, with teaching/advising/enrollment
// relations and taxonomy rules.
func GenKnowledgeBase(n int, g *tensor.RNG) *KnowledgeBase {
	if n < 6 {
		n = 6
	}
	kb := &KnowledgeBase{Facts: logic.NewFactBase()}
	third := n / 3
	profs := make([]string, 0, third)
	students := make([]string, 0, third)
	courses := make([]string, 0, n-2*third)
	for i := 0; i < third; i++ {
		p := fmt.Sprintf("prof%d", i)
		profs = append(profs, p)
		kb.Facts.Assert("professor", 1, p)
		kb.Facts.Assert("person", 1, p)
	}
	for i := 0; i < third; i++ {
		s := fmt.Sprintf("student%d", i)
		students = append(students, s)
		kb.Facts.Assert("student", 1, s)
		kb.Facts.Assert("person", 1, s)
	}
	for i := 0; i < n-2*third; i++ {
		c := fmt.Sprintf("course%d", i)
		courses = append(courses, c)
		kb.Facts.Assert("course", 1, c)
	}
	kb.Constants = append(append(append([]string{}, profs...), students...), courses...)

	// Relations: every course taught by a professor; students enroll in
	// 1-3 courses; professors advise some students.
	for _, c := range courses {
		kb.Facts.Assert("teaches", 1, profs[g.Intn(len(profs))], c)
	}
	for _, s := range students {
		k := 1 + g.Intn(3)
		for j := 0; j < k && j < len(courses); j++ {
			kb.Facts.Assert("takes", 1, s, courses[g.Intn(len(courses))])
		}
		if g.Float64() < 0.7 {
			kb.Facts.Assert("advises", 1, profs[g.Intn(len(profs))], s)
		}
	}

	// Taxonomy and derivation rules (the LNN formula set).
	x, y, c := logic.V("x"), logic.V("y"), logic.V("c")
	kb.Rules = []logic.Formula{
		logic.Forall("x", logic.Implies(logic.Pred("professor", x), logic.Pred("faculty", x))),
		logic.Forall("x", logic.Implies(logic.Pred("faculty", x), logic.Pred("employee", x))),
		logic.Forall("x", logic.Implies(logic.Pred("student", x), logic.Pred("person", x))),
		logic.Forall("x", logic.Forall("y", logic.Implies(
			logic.And(logic.Pred("advises", x, y), logic.Pred("student", y)),
			logic.Pred("mentor", x)))),
		logic.Forall("x", logic.Forall("c", logic.Forall("y", logic.Implies(
			logic.And(logic.Pred("teaches", x, c), logic.Pred("takes", y, c)),
			logic.Pred("instructs", x, y))))),
	}
	_ = c
	for i := 0; i < len(profs) && i < 4; i++ {
		kb.Queries = append(kb.Queries,
			logic.Pred("employee", logic.C(profs[i])),
			logic.Pred("mentor", logic.C(profs[i])))
	}
	return kb
}

// Tabular is a labelled point set for LTN's supervised grounding tasks.
type Tabular struct {
	X     *tensor.Tensor // n × d features
	Y     []int          // class labels
	Dim   int
	Class int
}

// GenTabular draws n points in d dimensions from `classes` Gaussian blobs,
// the shape of the UCI-style classification tasks LTN is evaluated on.
func GenTabular(n, d, classes int, g *tensor.RNG) *Tabular {
	t := &Tabular{X: tensor.New(n, d), Y: make([]int, n), Dim: d, Class: classes}
	centers := g.Normal(0, 3, classes, d)
	for i := 0; i < n; i++ {
		c := g.Intn(classes)
		t.Y[i] = c
		for j := 0; j < d; j++ {
			t.X.Data()[i*d+j] = centers.At(c, j) + float32(g.Rand().NormFloat64())*0.7
		}
	}
	return t
}

// FamilyGraph is an NLM relational-reasoning instance: `N` people with
// parent relations; the target predicates (grandparent, sibling) are
// derivable by two-hop composition.
type FamilyGraph struct {
	N      int
	Parent [][]bool // Parent[i][j]: i is a parent of j
}

// GenFamilyGraph builds a random forest of families over n people.
func GenFamilyGraph(n int, g *tensor.RNG) *FamilyGraph {
	f := &FamilyGraph{N: n, Parent: make([][]bool, n)}
	for i := range f.Parent {
		f.Parent[i] = make([]bool, n)
	}
	// People are ordered by generation; each non-root gets 1-2 parents
	// from the preceding cohort.
	for child := 1; child < n; child++ {
		lo := child - 4
		if lo < 0 {
			lo = 0
		}
		numParents := 1 + g.Intn(2)
		for k := 0; k < numParents; k++ {
			p := lo + g.Intn(child-lo)
			f.Parent[p][child] = true
		}
	}
	return f
}

// Grandparent returns the ground-truth grandparent relation.
func (f *FamilyGraph) Grandparent() [][]bool {
	gp := make([][]bool, f.N)
	for i := range gp {
		gp[i] = make([]bool, f.N)
	}
	for a := 0; a < f.N; a++ {
		for b := 0; b < f.N; b++ {
			if !f.Parent[a][b] {
				continue
			}
			for c := 0; c < f.N; c++ {
				if f.Parent[b][c] {
					gp[a][c] = true
				}
			}
		}
	}
	return gp
}

// SortingInstance is an NLM decision-making instance: an array to sort via
// pairwise-relation reasoning.
type SortingInstance struct {
	Values []float32
}

// GenSorting draws an array of n distinct values.
func GenSorting(n int, g *tensor.RNG) SortingInstance {
	v := make([]float32, n)
	for i := range v {
		v[i] = float32(i) + 0.5*g.Rand().Float32()
	}
	g.Shuffle(n, func(i, j int) { v[i], v[j] = v[j], v[i] })
	return SortingInstance{Values: v}
}

// ImagePair is an unpaired translation instance: a source-domain and a
// target-domain image with shared layout but different texture statistics —
// the structure of the GTA→Cityscapes task.
type ImagePair struct {
	Source, Target *tensor.Tensor // 1×C×H×W each
}

// GenImagePair renders a piecewise-constant layout of k regions, then
// textures it with domain-specific noise and gain. Source and target share
// the layout (semantics) but differ in appearance, so semantic flipping is
// detectable.
func GenImagePair(size, regions int, g *tensor.RNG) ImagePair {
	layout := make([]int, size*size)
	// Random axis-aligned region seeds grown row-major.
	for i := range layout {
		layout[i] = g.Intn(regions)
	}
	// Smooth the layout with a few majority passes to form contiguous regions.
	for pass := 0; pass < 2; pass++ {
		for y := 1; y < size-1; y++ {
			for x := 1; x < size-1; x++ {
				layout[y*size+x] = layout[(y-1)*size+x]
			}
		}
	}
	src := tensor.New(1, 3, size, size)
	dst := tensor.New(1, 3, size, size)
	for c := 0; c < 3; c++ {
		for i, r := range layout {
			base := float32(r+1) / float32(regions+1)
			src.Data()[c*size*size+i] = base*0.8 + 0.1*float32(g.Rand().NormFloat64())
			dst.Data()[c*size*size+i] = base*0.5 + 0.3 + 0.05*float32(g.Rand().NormFloat64())
		}
	}
	return ImagePair{Source: src, Target: dst}
}

// ConceptGrid is a ZeroC instance: a binary image containing a hierarchical
// concept composed of primitive strokes (lines), plus the identity of the
// composed concept.
type ConceptGrid struct {
	Image   *tensor.Tensor // 1×1×H×W
	Concept string         // e.g. "Eshape", "Fshape", "rect"
}

// ConceptNames lists the hierarchical concepts ZeroC must recognize.
func ConceptNames() []string { return []string{"rect", "Eshape", "Fshape", "Tshape", "cross"} }

// GenConceptGrid renders one concept at a random offset.
func GenConceptGrid(size int, concept string, g *tensor.RNG) ConceptGrid {
	img := tensor.New(1, 1, size, size)
	d := img.Data()
	ox, oy := g.Intn(size/3), g.Intn(size/3)
	L := size / 2
	hline := func(x, y, l int) {
		for i := 0; i < l; i++ {
			if y < size && x+i < size {
				d[y*size+x+i] = 1
			}
		}
	}
	vline := func(x, y, l int) {
		for i := 0; i < l; i++ {
			if y+i < size && x < size {
				d[(y+i)*size+x] = 1
			}
		}
	}
	switch concept {
	case "rect":
		hline(ox, oy, L)
		hline(ox, oy+L-1, L)
		vline(ox, oy, L)
		vline(ox+L-1, oy, L)
	case "Eshape":
		vline(ox, oy, L)
		hline(ox, oy, L/2)
		hline(ox, oy+L/2, L/2)
		hline(ox, oy+L-1, L/2)
	case "Fshape":
		vline(ox, oy, L)
		hline(ox, oy, L/2)
		hline(ox, oy+L/2, L/2)
	case "Tshape":
		hline(ox, oy, L)
		vline(ox+L/2, oy, L)
	case "cross":
		hline(ox, oy+L/2, L)
		vline(ox+L/2, oy, L)
	default:
		panic(fmt.Sprintf("datasets: unknown concept %q", concept))
	}
	return ConceptGrid{Image: img, Concept: concept}
}
