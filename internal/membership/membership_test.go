package membership

import (
	"sync"
	"testing"
	"time"
)

// recorder collects callback firings for assertions.
type recorder struct {
	mu     sync.Mutex
	joins  []string
	leaves []string // "node reason"
}

func (r *recorder) onJoin(node string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.joins = append(r.joins, node)
}

func (r *recorder) onLeave(node, reason string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.leaves = append(r.leaves, node+" "+reason)
}

func (r *recorder) snapshot() (joins, leaves []string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]string(nil), r.joins...), append([]string(nil), r.leaves...)
}

func TestNormalizeNode(t *testing.T) {
	good := map[string]string{
		"http://replica-1:8080":    "http://replica-1:8080",
		" http://replica-1:8080/ ": "http://replica-1:8080",
		"HTTP://Replica-1:8080":    "http://replica-1:8080",
		"https://10.0.0.2:9443":    "https://10.0.0.2:9443",
	}
	for raw, want := range good {
		got, err := NormalizeNode(raw)
		if err != nil {
			t.Errorf("NormalizeNode(%q): %v", raw, err)
			continue
		}
		if got != want {
			t.Errorf("NormalizeNode(%q) = %q, want %q", raw, got, want)
		}
	}
	for _, raw := range []string{"", "   ", "replica:8080", "ftp://x", "http://", "http://h:1/path"} {
		if got, err := NormalizeNode(raw); err == nil {
			t.Errorf("NormalizeNode(%q) = %q, want error", raw, got)
		}
	}
}

func TestRegistryJoinHeartbeatLeave(t *testing.T) {
	rec := &recorder{}
	g := NewRegistry(Config{Enabled: true}, rec.onJoin, rec.onLeave)
	defer g.Close()

	if !g.Join("http://a:1") {
		t.Fatal("first join must report added")
	}
	if g.Join("http://a:1") {
		t.Fatal("repeat join (heartbeat) must not report added")
	}
	if !g.Contains("http://a:1") || g.Len() != 1 {
		t.Fatalf("membership after join: contains=%v len=%d", g.Contains("http://a:1"), g.Len())
	}
	if !g.Leave("http://a:1", ReasonLeave) {
		t.Fatal("leave of a member must report true")
	}
	if g.Leave("http://a:1", ReasonLeave) {
		t.Fatal("leave of a non-member must report false")
	}
	if g.Contains("http://a:1") {
		t.Fatal("left node still a member")
	}
	// Re-join after leave is a fresh join.
	if !g.Join("http://a:1") {
		t.Fatal("re-join after leave must report added")
	}

	joins, leaves := rec.snapshot()
	if len(joins) != 2 || joins[0] != "http://a:1" {
		t.Fatalf("join callbacks = %v, want two for http://a:1", joins)
	}
	if len(leaves) != 1 || leaves[0] != "http://a:1 leave" {
		t.Fatalf("leave callbacks = %v", leaves)
	}
	if j, l := g.Counts(); j != 2 || l != 1 {
		t.Fatalf("counts = %d/%d, want 2 joins / 1 leave", j, l)
	}
	dep := g.Departed()
	if len(dep) != 1 || dep[0].Node != "http://a:1" || dep[0].Reason != ReasonLeave {
		t.Fatalf("departed ledger = %+v", dep)
	}
}

// TestRegistryTTLExpiry: a dynamic member that stops heartbeating is
// swept out with ReasonExpired; a static member never expires; a member
// that keeps heartbeating survives.
func TestRegistryTTLExpiry(t *testing.T) {
	rec := &recorder{}
	g := NewRegistry(Config{Enabled: true, TTL: 50 * time.Millisecond, SweepInterval: 10 * time.Millisecond},
		rec.onJoin, rec.onLeave)
	g.SeedStatic([]string{"http://static:1"})
	g.Start()
	defer g.Close()

	g.Join("http://silent:1")
	g.Join("http://chatty:1")

	deadline := time.Now().Add(5 * time.Second)
	for g.Contains("http://silent:1") {
		if time.Now().After(deadline) {
			t.Fatal("silent member never expired")
		}
		g.Join("http://chatty:1") // heartbeat
		time.Sleep(5 * time.Millisecond)
	}
	if !g.Contains("http://chatty:1") {
		t.Fatal("heartbeating member expired")
	}
	if !g.Contains("http://static:1") {
		t.Fatal("static member expired — statics must be TTL-immune")
	}
	_, leaves := rec.snapshot()
	found := false
	for _, l := range leaves {
		if l == "http://silent:1 expired" {
			found = true
		}
		if l == "http://chatty:1 expired" || l == "http://static:1 expired" {
			t.Fatalf("unexpected expiry: %s", l)
		}
	}
	if !found {
		t.Fatalf("no expired callback for silent member; leaves=%v", leaves)
	}
}

func TestRegistryDepartedLedgerCap(t *testing.T) {
	g := NewRegistry(Config{DepartedLog: 3}, nil, nil)
	defer g.Close()
	for _, n := range []string{"a", "b", "c", "d", "e"} {
		g.Join("http://" + n + ":1")
		g.Leave("http://"+n+":1", ReasonLeave)
	}
	dep := g.Departed()
	if len(dep) != 3 {
		t.Fatalf("ledger holds %d entries, want cap 3", len(dep))
	}
	if dep[0].Node != "http://c:1" || dep[2].Node != "http://e:1" {
		t.Fatalf("ledger kept wrong window: %+v", dep)
	}
}

func TestRegistryStaticSeedAndMembers(t *testing.T) {
	g := NewRegistry(Config{}, nil, nil)
	defer g.Close()
	g.SeedStatic([]string{"http://b:1", "http://a:1"})
	// A static replica announcing itself is a heartbeat, not a new join.
	if g.Join("http://a:1") {
		t.Fatal("static member join must not report added")
	}
	members := g.Members()
	if len(members) != 2 || members[0].Node != "http://a:1" || !members[0].Static {
		t.Fatalf("members = %+v", members)
	}
	nodes := g.Nodes()
	if len(nodes) != 2 || nodes[0] != "http://a:1" || nodes[1] != "http://b:1" {
		t.Fatalf("nodes = %v, want sorted pair", nodes)
	}
}
