// Package membership gives the cluster tier runtime elasticity: replicas
// announce themselves to the router instead of being frozen into a
// -replicas flag at startup.
//
// The protocol is deliberately minimal — one announcement verb, carried
// over the HTTP surface both tiers already have:
//
//   - POST /v1/cluster/join {"url": ...} registers a replica, and a
//     repeat of the same request is its heartbeat (an idempotent upsert
//     that refreshes the member's TTL). A replica that can retry one
//     POST in a loop needs no further protocol state, and a router
//     restart heals itself: the next heartbeat round re-registers every
//     live replica.
//   - POST /v1/cluster/leave {"url": ...} withdraws a replica
//     immediately (graceful drain). Crashed replicas never send it;
//     their membership expires when heartbeats stop for TTL.
//
// The server half is Registry: the router's membership table, with a TTL
// sweeper for silent departures, a ledger of recent departures (the
// stats endpoint reports a mid-fan-out leaver as departed, not errored),
// and OnJoin/OnLeave callbacks the router uses to drive its health
// checker and hash ring. The client half is Announcer: the loop a
// replica runs next to its listener — join on start, heartbeat every
// interval, leave on drain.
//
// Membership is deliberately *not* health: joining makes a replica known,
// the router's health checker decides (via its probation/readmit path)
// when the replica is fit to own keys. A member can be ejected by the
// checker and still be a member — it keeps heartbeating and is readmitted
// when probes pass — while a member that stops heartbeating is removed
// outright.
package membership

import (
	"errors"
	"fmt"
	"net/url"
	"sort"
	"strings"
	"sync"
	"time"
)

// Reasons attached to departures, for the event ledger and callbacks.
const (
	ReasonLeave   = "leave"   // explicit POST /v1/cluster/leave
	ReasonExpired = "expired" // heartbeats stopped for longer than TTL
)

// Config parameterizes a Registry. The zero value gives production-ish
// defaults sized for the default 2s health-probe cadence.
type Config struct {
	// Enabled gates the router's join/leave endpoints. Off, the cluster
	// is the static -replicas list and announcements answer 403.
	Enabled bool
	// TTL is how long a dynamic member survives without a heartbeat; 0
	// selects 15s. Announcers should heartbeat at TTL/3 or faster.
	TTL time.Duration
	// SweepInterval is the expiry-scan period; 0 selects TTL/4.
	SweepInterval time.Duration
	// DepartedLog bounds the recent-departure ledger; 0 selects 32.
	DepartedLog int
}

func (c *Config) defaults() {
	if c.TTL == 0 {
		c.TTL = 15 * time.Second
	}
	if c.SweepInterval == 0 {
		c.SweepInterval = c.TTL / 4
	}
	if c.DepartedLog == 0 {
		c.DepartedLog = 32
	}
}

// Member is one row of the membership table.
type Member struct {
	Node string `json:"node"`
	// Static marks a replica seeded from the router's -replicas flag.
	// Static members never expire — the health checker alone decides
	// their fate — but an explicit leave still withdraws them.
	Static   bool      `json:"static"`
	JoinedAt time.Time `json:"-"`
	LastSeen time.Time `json:"-"`
}

// Departure is one entry of the recent-departure ledger.
type Departure struct {
	Node   string    `json:"node"`
	Reason string    `json:"reason"`
	At     time.Time `json:"-"`
}

// Registry is the router-side membership table. Construct with
// NewRegistry, Start the TTL sweeper, Close when done. All methods are
// safe for concurrent use; callbacks run outside the registry lock, one
// transition at a time per call.
type Registry struct {
	cfg Config

	// onJoin fires when a node becomes a member; onLeave when it stops
	// being one (reason ReasonLeave or ReasonExpired). Either may be nil.
	onJoin  func(node string)
	onLeave func(node, reason string)

	mu       sync.Mutex
	members  map[string]*Member
	departed []Departure // newest last, capped at DepartedLog

	joins  uint64
	leaves uint64

	started  bool
	stop     chan struct{}
	done     chan struct{}
	stopOnce sync.Once
}

// NewRegistry builds a registry. onJoin/onLeave may be nil.
func NewRegistry(cfg Config, onJoin func(node string), onLeave func(node, reason string)) *Registry {
	cfg.defaults()
	return &Registry{
		cfg:     cfg,
		onJoin:  onJoin,
		onLeave: onLeave,
		members: make(map[string]*Member),
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}
}

// NormalizeNode canonicalizes an announced replica URL: scheme+host only,
// lowercased scheme/host, trailing slash stripped. Announcements and the
// router's own -replicas flag must agree on one spelling per replica or
// the ring would hold duplicate nodes.
func NormalizeNode(raw string) (string, error) {
	s := strings.TrimSpace(raw)
	if s == "" {
		return "", errors.New("membership: empty node URL")
	}
	u, err := url.Parse(s)
	if err != nil {
		return "", fmt.Errorf("membership: bad node URL %q: %w", raw, err)
	}
	if u.Scheme != "http" && u.Scheme != "https" {
		return "", fmt.Errorf("membership: node URL %q must be http(s)", raw)
	}
	if u.Host == "" {
		return "", fmt.Errorf("membership: node URL %q has no host", raw)
	}
	if u.Path != "" && u.Path != "/" {
		return "", fmt.Errorf("membership: node URL %q must not carry a path", raw)
	}
	return strings.ToLower(u.Scheme) + "://" + strings.ToLower(u.Host), nil
}

// SeedStatic registers the router's statically configured replicas as
// permanent members. Call once, before Start.
func (g *Registry) SeedStatic(nodes []string) {
	now := time.Now()
	g.mu.Lock()
	defer g.mu.Unlock()
	for _, n := range nodes {
		if g.members[n] == nil {
			g.members[n] = &Member{Node: n, Static: true, JoinedAt: now, LastSeen: now}
		}
	}
}

// Join registers node (or refreshes its heartbeat TTL when already a
// member) and reports whether this call added a new member. A re-joining
// node that previously left or expired counts as a fresh join.
func (g *Registry) Join(node string) bool {
	now := time.Now()
	g.mu.Lock()
	if m := g.members[node]; m != nil {
		m.LastSeen = now
		g.mu.Unlock()
		return false
	}
	g.members[node] = &Member{Node: node, JoinedAt: now, LastSeen: now}
	g.joins++
	g.mu.Unlock()
	if g.onJoin != nil {
		g.onJoin(node)
	}
	return true
}

// Leave withdraws node with the given reason, reporting whether it was a
// member. Static members may leave too (a statically configured replica
// draining gracefully announces it like any other).
func (g *Registry) Leave(node, reason string) bool {
	g.mu.Lock()
	if g.members[node] == nil {
		g.mu.Unlock()
		return false
	}
	delete(g.members, node)
	g.leaves++
	g.recordDepartureLocked(node, reason)
	g.mu.Unlock()
	if g.onLeave != nil {
		g.onLeave(node, reason)
	}
	return true
}

// recordDepartureLocked appends to the departure ledger, dropping the
// oldest entry at capacity. Caller holds g.mu.
func (g *Registry) recordDepartureLocked(node, reason string) {
	g.departed = append(g.departed, Departure{Node: node, Reason: reason, At: time.Now()})
	if over := len(g.departed) - g.cfg.DepartedLog; over > 0 {
		g.departed = append(g.departed[:0], g.departed[over:]...)
	}
}

// Contains reports whether node is currently a member.
func (g *Registry) Contains(node string) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.members[node] != nil
}

// Len reports the member count.
func (g *Registry) Len() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.members)
}

// Nodes returns the member node URLs, sorted.
func (g *Registry) Nodes() []string {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]string, 0, len(g.members))
	for n := range g.members {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Members returns a snapshot of the table, sorted by node.
func (g *Registry) Members() []Member {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]Member, 0, len(g.members))
	for _, m := range g.members {
		out = append(out, *m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Node < out[j].Node })
	return out
}

// Departed returns the recent-departure ledger, oldest first.
func (g *Registry) Departed() []Departure {
	g.mu.Lock()
	defer g.mu.Unlock()
	return append([]Departure(nil), g.departed...)
}

// Counts reports lifetime join and leave totals (expiries count as
// leaves).
func (g *Registry) Counts() (joins, leaves uint64) {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.joins, g.leaves
}

// Start launches the TTL sweeper: every SweepInterval, dynamic members
// whose last heartbeat is older than TTL leave with ReasonExpired.
func (g *Registry) Start() {
	g.mu.Lock()
	g.started = true
	g.mu.Unlock()
	go func() {
		defer close(g.done)
		t := time.NewTicker(g.cfg.SweepInterval)
		defer t.Stop()
		for {
			select {
			case <-g.stop:
				return
			case <-t.C:
				g.sweep()
			}
		}
	}()
}

// sweep expires silent dynamic members. Expiry decisions are taken under
// the lock; the Leave calls (and their callbacks) run outside it.
func (g *Registry) sweep() {
	cutoff := time.Now().Add(-g.cfg.TTL)
	g.mu.Lock()
	var expired []string
	for n, m := range g.members {
		if !m.Static && m.LastSeen.Before(cutoff) {
			expired = append(expired, n)
		}
	}
	g.mu.Unlock()
	sort.Strings(expired) // deterministic callback order
	for _, n := range expired {
		g.Leave(n, ReasonExpired)
	}
}

// Close stops the sweeper and waits for it to exit. Idempotent; safe to
// call even if Start never ran.
func (g *Registry) Close() {
	g.stopOnce.Do(func() { close(g.stop) })
	g.mu.Lock()
	started := g.started
	g.mu.Unlock()
	if started {
		<-g.done
	}
}
