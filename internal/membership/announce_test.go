package membership

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

// fakeRouter records join/leave announcements.
type fakeRouter struct {
	mu     sync.Mutex
	joins  []string
	leaves []string
}

func (f *fakeRouter) handler(t *testing.T) http.Handler {
	mux := http.NewServeMux()
	record := func(into *[]string) http.HandlerFunc {
		return func(w http.ResponseWriter, r *http.Request) {
			body, _ := io.ReadAll(r.Body)
			var ann Announcement
			if err := json.Unmarshal(body, &ann); err != nil {
				t.Errorf("bad announcement body %q: %v", body, err)
				http.Error(w, "bad body", http.StatusBadRequest)
				return
			}
			f.mu.Lock()
			*into = append(*into, ann.URL)
			f.mu.Unlock()
			w.WriteHeader(http.StatusOK)
		}
	}
	mux.HandleFunc("POST /v1/cluster/join", record(&f.joins))
	mux.HandleFunc("POST /v1/cluster/leave", record(&f.leaves))
	return mux
}

func (f *fakeRouter) counts() (joins, leaves int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.joins), len(f.leaves)
}

func TestAnnouncerJoinHeartbeatLeave(t *testing.T) {
	fr := &fakeRouter{}
	srv := httptest.NewServer(fr.handler(t))
	defer srv.Close()

	a, err := NewAnnouncer(AnnouncerConfig{
		Router:   srv.URL,
		Self:     "http://replica-1:8080",
		Interval: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	a.Start()

	// Immediate join plus at least one heartbeat.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if j, _ := fr.counts(); j >= 2 {
			break
		}
		if time.Now().After(deadline) {
			j, _ := fr.counts()
			t.Fatalf("saw %d join posts, want >= 2 (join + heartbeat)", j)
		}
		time.Sleep(2 * time.Millisecond)
	}

	a.Close()
	a.Close() // idempotent

	if _, l := fr.counts(); l != 1 {
		t.Fatalf("saw %d leave posts after Close, want exactly 1", l)
	}
	fr.mu.Lock()
	defer fr.mu.Unlock()
	if fr.joins[0] != "http://replica-1:8080" || fr.leaves[0] != "http://replica-1:8080" {
		t.Fatalf("announced wrong identity: joins[0]=%q leaves[0]=%q", fr.joins[0], fr.leaves[0])
	}
}

func TestAnnouncerCloseWithoutStart(t *testing.T) {
	fr := &fakeRouter{}
	srv := httptest.NewServer(fr.handler(t))
	defer srv.Close()

	a, err := NewAnnouncer(AnnouncerConfig{Router: srv.URL, Self: "http://replica-1:8080"})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() { a.Close(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Close hung when Start was never called")
	}
}

func TestAnnouncerValidatesURLs(t *testing.T) {
	if _, err := NewAnnouncer(AnnouncerConfig{Router: "not-a-url", Self: "http://a:1"}); err == nil {
		t.Fatal("bad router URL accepted")
	}
	if _, err := NewAnnouncer(AnnouncerConfig{Router: "http://r:1", Self: "r2:8080"}); err == nil {
		t.Fatal("bad self URL accepted")
	}
}
