package membership

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"sync"
	"time"
)

// Announcement is the wire form of a join/heartbeat/leave POST.
type Announcement struct {
	// URL is the replica base URL the router should route to — the
	// replica's advertised identity, not whatever source address the
	// announcement happened to arrive from (the replica knows its
	// reachable name; the router's accept socket does not).
	URL string `json:"url"`
}

// AnnouncerConfig parameterizes an Announcer.
type AnnouncerConfig struct {
	// Router is the nsrouter base URL announcements go to (required).
	Router string
	// Self is this replica's advertised base URL (required).
	Self string
	// Interval between heartbeats; 0 selects 5s. Keep it at or below a
	// third of the router's membership TTL or the replica flaps.
	Interval time.Duration
	// Timeout caps one announcement POST; 0 selects 2s.
	Timeout time.Duration
	// Logger, when non-nil, receives join/leave/heartbeat-failure lines.
	Logger *slog.Logger
}

// Announcer keeps one replica registered with a router: an immediate
// join on Start, a heartbeat (the same idempotent join POST) every
// Interval, and a best-effort leave on Close. Announcement failures are
// retried implicitly by the next heartbeat — a router restart or brief
// partition heals within one interval.
type Announcer struct {
	cfg    AnnouncerConfig
	client *http.Client

	stop      chan struct{}
	done      chan struct{}
	startOnce sync.Once
	closeOnce sync.Once
}

// NewAnnouncer validates cfg and returns an announcer ready to Start.
func NewAnnouncer(cfg AnnouncerConfig) (*Announcer, error) {
	router, err := NormalizeNode(cfg.Router)
	if err != nil {
		return nil, fmt.Errorf("router URL: %w", err)
	}
	self, err := NormalizeNode(cfg.Self)
	if err != nil {
		return nil, fmt.Errorf("advertised URL: %w", err)
	}
	cfg.Router, cfg.Self = router, self
	if cfg.Interval <= 0 {
		cfg.Interval = 5 * time.Second
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 2 * time.Second
	}
	return &Announcer{
		cfg:    cfg,
		client: &http.Client{Timeout: cfg.Timeout},
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}, nil
}

// Start launches the announce loop: one immediate join, then a heartbeat
// every Interval until Close.
func (a *Announcer) Start() {
	a.startOnce.Do(func() {
		go func() {
			defer close(a.done)
			if err := a.post("/v1/cluster/join"); err != nil && a.cfg.Logger != nil {
				a.cfg.Logger.Warn("cluster join failed; heartbeats will retry",
					"router", a.cfg.Router, "err", err)
			} else if err == nil && a.cfg.Logger != nil {
				a.cfg.Logger.Info("joined cluster", "router", a.cfg.Router, "self", a.cfg.Self)
			}
			t := time.NewTicker(a.cfg.Interval)
			defer t.Stop()
			for {
				select {
				case <-a.stop:
					return
				case <-t.C:
					if err := a.post("/v1/cluster/join"); err != nil && a.cfg.Logger != nil {
						a.cfg.Logger.Warn("cluster heartbeat failed", "router", a.cfg.Router, "err", err)
					}
				}
			}
		}()
	})
}

// Close stops the heartbeat loop and sends one best-effort leave so the
// router withdraws this replica immediately instead of waiting out the
// TTL. Call it at the start of a drain, before readiness flips — the
// membership leave pulls the replica from the ring faster than health
// ejection would. Idempotent.
func (a *Announcer) Close() {
	a.closeOnce.Do(func() {
		close(a.stop)
		// Wait for the loop only if it ever started.
		a.startOnce.Do(func() { close(a.done) })
		<-a.done
		if err := a.post("/v1/cluster/leave"); err != nil {
			if a.cfg.Logger != nil {
				a.cfg.Logger.Warn("cluster leave failed; router TTL will expire us",
					"router", a.cfg.Router, "err", err)
			}
			return
		}
		if a.cfg.Logger != nil {
			a.cfg.Logger.Info("left cluster", "router", a.cfg.Router, "self", a.cfg.Self)
		}
	})
}

// post sends one announcement to the router endpoint at path.
func (a *Announcer) post(path string) error {
	body, err := json.Marshal(Announcement{URL: a.cfg.Self})
	if err != nil {
		return err
	}
	ctx, cancel := context.WithTimeout(context.Background(), a.cfg.Timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, a.cfg.Router+path, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := a.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: status %d", path, resp.StatusCode)
	}
	return nil
}
