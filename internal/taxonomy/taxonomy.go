// Package taxonomy encodes the paper's Tables I–III as a queryable
// registry: Henry Kautz's five neuro-symbolic integration paradigms, the
// seventeen surveyed algorithms with their underlying operations and vector
// formats (Tab. I/II), and the metadata of the seven selected workloads
// (Tab. III).
package taxonomy

import "fmt"

// Paradigm is one of the five integration categories.
type Paradigm int

// The five paradigms, in the paper's order.
const (
	SymbolicNeuro  Paradigm = iota // Symbolic[Neuro]
	NeuroPipeline                  // Neuro|Symbolic
	NeuroCompile                   // Neuro:Symbolic→Neuro
	NeuroSubscript                 // Neuro_Symbolic
	NeuroInternal                  // Neuro[Symbolic]
	numParadigms
)

// Paradigms lists all categories in order.
func Paradigms() []Paradigm {
	return []Paradigm{SymbolicNeuro, NeuroPipeline, NeuroCompile, NeuroSubscript, NeuroInternal}
}

// String returns the paper's notation for the paradigm.
func (p Paradigm) String() string {
	switch p {
	case SymbolicNeuro:
		return "Symbolic[Neuro]"
	case NeuroPipeline:
		return "Neuro|Symbolic"
	case NeuroCompile:
		return "Neuro:Symbolic→Neuro"
	case NeuroSubscript:
		return "Neuro_Symbolic"
	case NeuroInternal:
		return "Neuro[Symbolic]"
	default:
		return fmt.Sprintf("Paradigm(%d)", int(p))
	}
}

// Description returns the paper's one-line description of the paradigm.
func (p Paradigm) Description() string {
	switch p {
	case SymbolicNeuro:
		return "End-to-end symbolic system that uses neural models internally as a subroutine"
	case NeuroPipeline:
		return "Pipelined system integrating neural and symbolic components specialized for complementary tasks"
	case NeuroCompile:
		return "End-to-end neural system that compiles symbolic knowledge externally into the network"
	case NeuroSubscript:
		return "Symbolic first-order logic mapped onto embeddings as soft constraints or regularizers"
	case NeuroInternal:
		return "End-to-end neural system that uses symbolic models internally as a subroutine"
	default:
		return ""
	}
}

// Algorithm is one Table-I row.
type Algorithm struct {
	Name       string
	Paradigm   Paradigm
	Operations []string // underlying operations
	Vector     bool     // vector format (vs non-vector)
	Selected   bool     // one of the seven characterized workloads
}

// algorithms is the Table-I survey.
var algorithms = []Algorithm{
	{Name: "AlphaGo", Paradigm: SymbolicNeuro, Operations: []string{"NN", "MCTS"}, Vector: true},
	{Name: "NVSA", Paradigm: NeuroPipeline, Operations: []string{"NN", "mul", "add", "circular conv"}, Vector: true, Selected: true},
	{Name: "NeuPSL", Paradigm: NeuroPipeline, Operations: []string{"NN", "fuzzy logic"}, Vector: true},
	{Name: "NSCL", Paradigm: NeuroPipeline, Operations: []string{"NN", "add", "mul", "div", "log"}, Vector: true},
	{Name: "NeurASP", Paradigm: NeuroPipeline, Operations: []string{"NN", "logic rules"}, Vector: false},
	{Name: "ABL", Paradigm: NeuroPipeline, Operations: []string{"NN", "logic rules"}, Vector: false},
	{Name: "NSVQA", Paradigm: NeuroPipeline, Operations: []string{"NN", "pre-defined objects"}, Vector: false},
	{Name: "VSAIT", Paradigm: NeuroPipeline, Operations: []string{"NN", "binding/unbinding"}, Vector: true, Selected: true},
	{Name: "PrAE", Paradigm: NeuroPipeline, Operations: []string{"NN", "logic rules", "prob. abduction"}, Vector: true, Selected: true},
	{Name: "LNN", Paradigm: NeuroCompile, Operations: []string{"NN", "fuzzy logic"}, Vector: true, Selected: true},
	{Name: "Symbolic Math", Paradigm: NeuroCompile, Operations: []string{"NN"}, Vector: true},
	{Name: "Differentiable ILP", Paradigm: NeuroCompile, Operations: []string{"NN", "fuzzy logic"}, Vector: true},
	{Name: "LTN", Paradigm: NeuroSubscript, Operations: []string{"NN", "fuzzy logic"}, Vector: true, Selected: true},
	{Name: "DON", Paradigm: NeuroSubscript, Operations: []string{"NN"}, Vector: true},
	{Name: "GNN+attention", Paradigm: NeuroSubscript, Operations: []string{"NN", "SpMM", "SDDMM"}, Vector: true},
	{Name: "ZeroC", Paradigm: NeuroInternal, Operations: []string{"NN (energy-based model, graph)"}, Vector: true, Selected: true},
	{Name: "NLM", Paradigm: NeuroInternal, Operations: []string{"NN", "permutation"}, Vector: true, Selected: true},
}

// Algorithms returns all Table-I rows.
func Algorithms() []Algorithm { return append([]Algorithm(nil), algorithms...) }

// ByParadigm returns the algorithms of one paradigm.
func ByParadigm(p Paradigm) []Algorithm {
	var out []Algorithm
	for _, a := range algorithms {
		if a.Paradigm == p {
			out = append(out, a)
		}
	}
	return out
}

// Find looks an algorithm up by name.
func Find(name string) (Algorithm, bool) {
	for _, a := range algorithms {
		if a.Name == name {
			return a, true
		}
	}
	return Algorithm{}, false
}

// WorkloadMeta is one Table-III column: the metadata of a selected workload.
type WorkloadMeta struct {
	Name        string
	FullName    string
	Paradigm    Paradigm
	Learning    string
	Application string
	Datasets    []string
	Datatype    string
	NeuralPart  string
	SymbolicOps []string
}

// workloadMeta is the Table-III metadata.
var workloadMeta = []WorkloadMeta{
	{
		Name: "LNN", FullName: "Logical Neural Network", Paradigm: NeuroCompile,
		Learning: "Supervised", Application: "Learning and reasoning, full theorem prover",
		Datasets: []string{"LUBM", "TPTP"}, Datatype: "FP32",
		NeuralPart: "Graph of logic neurons", SymbolicOps: []string{"fuzzy logic", "truth bounds", "omnidirectional inference"},
	},
	{
		Name: "LTN", FullName: "Logic Tensor Network", Paradigm: NeuroSubscript,
		Learning: "Supervised/Unsupervised", Application: "Querying, learning, reasoning",
		Datasets: []string{"UCI", "Leptograpsus crabs", "DeepProbLog"}, Datatype: "FP32",
		NeuralPart: "MLP", SymbolicOps: []string{"fuzzy FOL", "quantifier aggregation"},
	},
	{
		Name: "NVSA", FullName: "Neuro-Vector-Symbolic Architecture", Paradigm: NeuroPipeline,
		Learning: "Supervised/Unsupervised", Application: "Fluid intelligence, abstract reasoning",
		Datasets: []string{"RAVEN", "I-RAVEN", "PGM"}, Datatype: "FP32",
		NeuralPart: "ConvNet", SymbolicOps: []string{"circular convolution", "codebook cleanup", "probabilistic abduction"},
	},
	{
		Name: "NLM", FullName: "Neural Logic Machine", Paradigm: NeuroInternal,
		Learning: "Supervised/Unsupervised", Application: "Relational reasoning, decision making",
		Datasets: []string{"family graph reasoning", "sorting", "path finding"}, Datatype: "FP32",
		NeuralPart: "Sequential tensor MLPs", SymbolicOps: []string{"permutation", "expand/reduce quantifiers"},
	},
	{
		Name: "VSAIT", FullName: "VSA Image-to-Image Translation", Paradigm: NeuroPipeline,
		Learning: "Supervised", Application: "Unpaired image-to-image translation",
		Datasets: []string{"GTA", "Cityscapes", "Google Maps"}, Datatype: "FP32",
		NeuralPart: "ConvNet", SymbolicOps: []string{"LSH encoding", "binding/unbinding", "hyperspace similarity"},
	},
	{
		Name: "ZeroC", FullName: "Zero-shot Concept Recognition and Acquisition", Paradigm: NeuroInternal,
		Learning: "Supervised", Application: "Cross-domain classification and detection",
		Datasets: []string{"abstraction reasoning", "hierarchical-concept corpus"}, Datatype: "INT64",
		NeuralPart: "Energy-based network ensemble", SymbolicOps: []string{"concept graphs", "relation grounding"},
	},
	{
		Name: "PrAE", FullName: "Probabilistic Abduction and Execution", Paradigm: NeuroPipeline,
		Learning: "Supervised/Unsupervised", Application: "Fluid intelligence, spatial-temporal reasoning",
		Datasets: []string{"RAVEN", "I-RAVEN", "PGM"}, Datatype: "FP32",
		NeuralPart: "ConvNet", SymbolicOps: []string{"probabilistic abduction", "scene inference", "rule execution"},
	},
}

// Workloads returns the Table-III metadata in the paper's order.
func Workloads() []WorkloadMeta { return append([]WorkloadMeta(nil), workloadMeta...) }

// WorkloadByName looks workload metadata up by short name.
func WorkloadByName(name string) (WorkloadMeta, bool) {
	for _, w := range workloadMeta {
		if w.Name == name {
			return w, true
		}
	}
	return WorkloadMeta{}, false
}
