package taxonomy

import "testing"

func TestParadigmStrings(t *testing.T) {
	want := []string{"Symbolic[Neuro]", "Neuro|Symbolic", "Neuro:Symbolic→Neuro", "Neuro_Symbolic", "Neuro[Symbolic]"}
	for i, p := range Paradigms() {
		if p.String() != want[i] {
			t.Fatalf("paradigm %d = %q, want %q", i, p.String(), want[i])
		}
		if p.Description() == "" {
			t.Fatalf("paradigm %v has no description", p)
		}
	}
}

func TestSeventeenAlgorithms(t *testing.T) {
	if len(Algorithms()) != 17 {
		t.Fatalf("algorithms = %d, want 17 (Table I)", len(Algorithms()))
	}
	selected := 0
	for _, a := range Algorithms() {
		if a.Selected {
			selected++
		}
		if len(a.Operations) == 0 {
			t.Fatalf("%s has no operations", a.Name)
		}
	}
	if selected != 7 {
		t.Fatalf("selected workloads = %d, want 7", selected)
	}
}

func TestByParadigmPartition(t *testing.T) {
	total := 0
	for _, p := range Paradigms() {
		total += len(ByParadigm(p))
	}
	if total != len(Algorithms()) {
		t.Fatal("paradigms do not partition the algorithm set")
	}
	if len(ByParadigm(NeuroPipeline)) < 5 {
		t.Fatal("Neuro|Symbolic should be the largest category")
	}
}

func TestFind(t *testing.T) {
	a, ok := Find("NVSA")
	if !ok || a.Paradigm != NeuroPipeline || !a.Vector || !a.Selected {
		t.Fatalf("Find(NVSA) = %+v, %v", a, ok)
	}
	if _, ok := Find("GPT-4"); ok {
		t.Fatal("unknown algorithm found")
	}
}

func TestWorkloadMetadata(t *testing.T) {
	ws := Workloads()
	if len(ws) != 7 {
		t.Fatalf("workload metadata rows = %d, want 7 (Table III)", len(ws))
	}
	for _, m := range ws {
		if m.FullName == "" || len(m.Datasets) == 0 || len(m.SymbolicOps) == 0 {
			t.Fatalf("incomplete metadata for %s", m.Name)
		}
		// Each selected workload must exist in Table I with a matching paradigm.
		a, ok := Find(m.Name)
		if !ok || !a.Selected {
			t.Fatalf("%s missing from Table I", m.Name)
		}
		if a.Paradigm != m.Paradigm {
			t.Fatalf("%s paradigm mismatch: %v vs %v", m.Name, a.Paradigm, m.Paradigm)
		}
	}
	if _, ok := WorkloadByName("NVSA"); !ok {
		t.Fatal("WorkloadByName failed")
	}
	if _, ok := WorkloadByName("BERT"); ok {
		t.Fatal("unknown workload metadata found")
	}
}

func TestZeroCUsesINT64(t *testing.T) {
	m, _ := WorkloadByName("ZeroC")
	if m.Datatype != "INT64" {
		t.Fatalf("ZeroC datatype = %s (Table III says INT64)", m.Datatype)
	}
}
