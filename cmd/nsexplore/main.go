// Command nsexplore drives a design-space exploration sweep against an
// nsserve replica or an nsrouter cluster and renders the streamed results:
// live progress on stderr, the latency x cost Pareto front on stdout, and
// the BENCH_explore.json artifact on disk.
//
// Usage:
//
//	nsexplore -server http://localhost:8080 -workload NVSA
//	nsexplore -spec space.json -out BENCH_explore.json
//
// The spec file is a JSON config space (the "space" object of the
// /v1/explore request); without one the stock 256-point default space is
// swept. Pointed at a router, the sweep is sharded across every live
// replica and the merged front is exact — byte-identical to a single-node
// sweep.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"time"

	"github.com/neurosym/nsbench/internal/dse"
)

func main() {
	server := flag.String("server", "http://localhost:8080", "nsserve or nsrouter base URL")
	workload := flag.String("workload", "NVSA", "workload to characterize and project")
	device := flag.String("device", "", "base device name (empty = server default, the RTX 2080 Ti)")
	spec := flag.String("spec", "", "JSON file holding the config space to sweep (empty = the stock 256-point default space)")
	out := flag.String("out", "BENCH_explore.json", "artifact output path (empty disables)")
	timeout := flag.Duration("timeout", 5*time.Minute, "overall sweep timeout")
	quiet := flag.Bool("quiet", false, "disable streaming progress on stderr")
	flag.Parse()

	if err := run(*server, *workload, *device, *spec, *out, *timeout, *quiet); err != nil {
		fmt.Fprintln(os.Stderr, "nsexplore:", err)
		os.Exit(1)
	}
}

func run(server, workload, device, spec, out string, timeout time.Duration, quiet bool) error {
	space := dse.DefaultSpace()
	if spec != "" {
		b, err := os.ReadFile(spec)
		if err != nil {
			return err
		}
		space = dse.Space{}
		dec := json.NewDecoder(bytes.NewReader(b))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&space); err != nil {
			return fmt.Errorf("parsing %s: %w", spec, err)
		}
	}
	reqBody, err := json.Marshal(struct {
		Workload string    `json:"workload"`
		Device   string    `json:"device,omitempty"`
		Space    dse.Space `json:"space"`
	}{workload, device, space})
	if err != nil {
		return err
	}

	client := &http.Client{Timeout: timeout}
	resp, err := client.Post(server+"/v1/explore", "application/json", bytes.NewReader(reqBody))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var msg bytes.Buffer
		msg.ReadFrom(bufio.NewReader(resp.Body))
		return fmt.Errorf("%s: %s", resp.Status, bytes.TrimSpace(msg.Bytes()))
	}

	var meta *dse.ChunkMeta
	var sum *dse.Summary
	points := 0
	start := time.Now()
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<22)
	for sc.Scan() {
		var c dse.Chunk
		if err := json.Unmarshal(sc.Bytes(), &c); err != nil {
			return fmt.Errorf("bad stream chunk %.120q: %w", sc.Text(), err)
		}
		switch c.Type {
		case "meta":
			meta = c.Meta
			if !quiet {
				fmt.Fprintf(os.Stderr, "nsexplore: sweeping %d points of %s on %s",
					meta.GridSize, meta.Workload, meta.Device)
				if meta.Shards > 1 {
					fmt.Fprintf(os.Stderr, " across %d shards", meta.Shards)
				}
				fmt.Fprintln(os.Stderr)
			}
		case "point":
			points++
			if !quiet && meta != nil && points%64 == 0 {
				fmt.Fprintf(os.Stderr, "nsexplore: %d/%d points (%.0f/s)\n",
					points, meta.GridSize, float64(points)/time.Since(start).Seconds())
			}
		case "summary":
			sum = c.Summary
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("stream: %w", err)
	}
	if sum == nil {
		return fmt.Errorf("stream ended without a summary after %d points", points)
	}
	for _, e := range sum.Errors {
		fmt.Fprintln(os.Stderr, "nsexplore: shard error:", e)
	}

	fmt.Printf("Design-space exploration — %s on a space over %s\n", sum.Workload, sum.Device)
	fmt.Printf("%d/%d points evaluated (%d failed) in %v (%.0f points/s)\n",
		sum.Evaluated, sum.GridSize, sum.Failed,
		time.Duration(sum.ElapsedNs).Round(time.Millisecond), sum.PointsPerSec)
	fmt.Printf("\nPareto front (latency x cost), %d points:\n", sum.FrontSize)
	fmt.Printf("%6s %12s %10s %10s %8s %9s\n", "index", "latency", "cost", "GFLOP/s", "GB/s", "symbolic%")
	for _, p := range sum.Front {
		fmt.Printf("%6d %12v %10.1f %10.0f %8.0f %8.1f%%\n",
			p.Index, time.Duration(p.LatencyNs).Round(time.Microsecond), p.Cost,
			p.Knobs.PeakGFLOPs*p.Knobs.PEs*p.Knobs.FreqScale, p.Knobs.MemBWGBs, 100*p.SymbolicShare)
	}

	if out == "" {
		return nil
	}
	art := dse.Artifact{
		Workload:     sum.Workload,
		Device:       sum.Device,
		GridSize:     sum.GridSize,
		Evaluated:    sum.Evaluated,
		Failed:       sum.Failed,
		ElapsedNs:    sum.ElapsedNs,
		PointsPerSec: sum.PointsPerSec,
		FrontSize:    sum.FrontSize,
		Front:        sum.Front,
	}
	b, err := json.MarshalIndent(art, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, append(b, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "nsexplore: wrote %s\n", out)
	return nil
}
