// Command nschaos runs a deterministic chaos/soak scenario against an
// in-process nsbench serving cluster: a real nsrouter with dynamic
// membership, N real nsserve replicas behind fault-injection proxies,
// seeded mixed traffic (characterize, coalescing bursts, design-space
// sweeps), and a seeded fault schedule of hard kills, restarts that
// re-join the ring at runtime, extra joins, and latency/connection-drop
// windows.
//
// The run passes when the serving tier's availability contract held:
// zero failed requests, deterministic report fields byte-stable across
// replica generations, SLO error budgets not exhausted, and stitched
// cross-process traces still valid. Exit status 1 means an invariant
// broke; the JSONL event log (-events) is the timeline to debug from.
//
// Usage:
//
//	nschaos -duration 60s -replicas 3 -replication 2 -kills 2 -joins 1 \
//	  -seed 7 -clients 3 -events chaos-events.jsonl
//
// The same seed, duration, and topology replay the same schedule.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"time"

	"github.com/neurosym/nsbench/internal/chaos"
	"github.com/neurosym/nsbench/internal/logging"
)

func main() {
	duration := flag.Duration("duration", 10*time.Second, "traffic window")
	replicas := flag.Int("replicas", 3, "initial replica count (min 2)")
	replication := flag.Int("replication", 2, "router cache fan-fill factor")
	seed := flag.Int64("seed", 1, "scenario seed (traffic mix, victim choice)")
	clients := flag.Int("clients", 2, "concurrent traffic generators")
	kills := flag.Int("kills", 2, "crash+restart cycles (-1 for none)")
	joins := flag.Int("joins", 1, "extra runtime joins (-1 for none)")
	workloads := flag.String("workloads", "LNN,LTN", "comma-separated registry workloads to drive")
	devices := flag.String("devices", "RTX 2080 Ti,Xavier NX", "comma-separated hwsim devices to drive")
	events := flag.String("events", "", "JSONL event-log path (empty = discard)")
	verbose := flag.Bool("v", false, "log router per-request lines to stderr")
	flag.Parse()

	var sink io.Writer
	if *events != "" {
		f, err := os.Create(*events)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		sink = f
	}
	cfg := chaos.Config{
		Replicas:    *replicas,
		Replication: *replication,
		Seed:        *seed,
		Duration:    *duration,
		Clients:     *clients,
		Kills:       *kills,
		Joins:       *joins,
		Workloads:   splitList(*workloads),
		Devices:     splitList(*devices),
		Events:      sink,
	}
	if *verbose {
		logger, err := logging.Setup(os.Stderr, logging.FormatText, false)
		if err != nil {
			fatal(err)
		}
		cfg.Logger = logger
	}

	fmt.Fprintf(os.Stderr, "nschaos: seed=%d duration=%s replicas=%d replication=%d kills=%d joins=%d clients=%d\n",
		*seed, *duration, *replicas, *replication, *kills, *joins, *clients)
	res, err := chaos.Run(cfg)
	if err != nil {
		fatal(err)
	}

	fmt.Printf("requests=%d generations=%d events=%d\n", res.Requests, res.Generations, len(res.Events))
	kinds := make([]string, 0, len(res.ByKind))
	for k := range res.ByKind {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	for _, k := range kinds {
		fmt.Printf("  %s=%d\n", k, res.ByKind[k])
	}
	budgets := make([]string, 0, len(res.SLOBudgets))
	for name := range res.SLOBudgets {
		budgets = append(budgets, name)
	}
	sort.Strings(budgets)
	for _, name := range budgets {
		fmt.Printf("slo %s budget_remaining=%.4f\n", name, res.SLOBudgets[name])
	}
	fmt.Printf("traces validated=%d\n", res.TracesValidated)

	if verr := res.Err(); verr != nil {
		fmt.Printf("invariants: FAILED: %v\n", verr)
		for i, f := range res.Failures {
			if i >= 10 {
				fmt.Printf("  ... %d more\n", len(res.Failures)-10)
				break
			}
			fmt.Printf("  [%s] %s\n", f.Kind, f.Detail)
		}
		os.Exit(1)
	}
	fmt.Println("invariants: ok")
}

func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if p := strings.TrimSpace(part); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "nschaos:", err)
	os.Exit(1)
}
