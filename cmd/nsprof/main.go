// Command nsprof profiles a single neuro-symbolic workload and prints the
// full characterization report: phase split, operator breakdown, memory,
// roofline placement, dataflow structure, stages and device projections.
//
// Usage:
//
//	nsprof -workload NVSA
//	nsprof -workload LNN -top 10
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"github.com/neurosym/nsbench/internal/core"
	"github.com/neurosym/nsbench/internal/hwsim"
	"github.com/neurosym/nsbench/internal/logging"
	"github.com/neurosym/nsbench/internal/metrics"
	"github.com/neurosym/nsbench/internal/ops"
	"github.com/neurosym/nsbench/internal/trace"
)

func main() {
	workload := flag.String("workload", "NVSA", "workload to profile: "+strings.Join(core.WorkloadNames(), ", "))
	device := flag.String("device", hwsim.RTX2080Ti.Name, "reference device for roofline analysis")
	top := flag.Int("top", 5, "number of hottest operators to list")
	jsonOut := flag.String("json", "", "write the raw trace as JSON to this file")
	reportOut := flag.String("report", "", "write the report summary as JSON to this file")
	chromeOut := flag.String("chrome-trace", "", "write a chrome://tracing / Perfetto timeline to this file")
	backendName := flag.String("backend", ops.BackendSerial, "execution backend: serial or parallel")
	workers := flag.Int("workers", 0, "parallel backend worker count (0 = GOMAXPROCS)")
	kernelName := flag.String("kernel", "auto", "GEMM/conv kernel implementation: auto (measured dispatch table), naive, or tiled")
	metricsOut := flag.String("metrics", "", "dump runtime/pool/operator metrics (Prometheus text) to this file at exit (\"-\" = stderr)")
	logFormat := flag.String("log-format", logging.FormatText, "log output format: text or json")
	flag.Parse()

	if _, err := logging.Setup(os.Stderr, *logFormat, false); err != nil {
		fatal(err)
	}
	dev, err := hwsim.DeviceByName(*device)
	if err != nil {
		fatal(err)
	}
	w, err := core.BuildWorkload(*workload)
	if err != nil {
		fatal(err)
	}
	eng := ops.Config{Backend: *backendName, Workers: *workers, Kernel: *kernelName}
	if err := eng.Validate(); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "profiling %s on the %s backend...\n", w.Name(), *backendName)
	pool := eng.NewPool()
	var reg *metrics.Registry
	if *metricsOut != "" {
		reg = metrics.NewRegistry()
		metrics.NewGoCollector(reg)
		metrics.RegisterBuildInfo(reg)
		ops.RegisterPoolMetrics(reg, pool)
		pool.SetObserver(ops.NewOpObserver(reg))
	}
	r, err := core.Characterize(w, core.Options{Device: dev, Engine: eng, Pool: pool})
	core.CloseWorkload(w)
	pool.Close()
	if err != nil {
		fatal(err)
	}
	if reg != nil {
		if err := dumpMetrics(reg, *metricsOut); err != nil {
			fatal(err)
		}
	}

	fmt.Printf("workload: %s (%s)\n", r.Name, r.Category)
	fmt.Printf("end-to-end: %v  neural %v (%.1f%%)  symbolic %v (%.1f%%)\n",
		r.Total, r.NeuralTime, 100*(1-r.SymbolicShare), r.SymbolicTime, 100*r.SymbolicShare)
	fmt.Printf("symbolic FLOP share: %.1f%%\n\n", 100*r.SymbolicFLOPShare)

	core.RenderFig3a(os.Stdout, []*core.Report{r})
	fmt.Println()
	core.RenderFig3b(os.Stdout, []*core.Report{r})
	fmt.Println()
	core.RenderFig3c(os.Stdout, []*core.Report{r}, dev)
	fmt.Println()
	core.RenderFig4(os.Stdout, []*core.Report{r})

	if len(r.Stages) > 0 {
		fmt.Println("\nstages:")
		fmt.Printf("  %-26s %12s %8s %10s\n", "stage", "time", "events", "sparsity")
		for _, s := range r.Stages {
			fmt.Printf("  %-26s %12v %8d %9.1f%%\n", s.Stage, s.Dur, s.Events, 100*s.Sparsity)
		}
	}

	fmt.Println("\nhottest operators:")
	for _, ev := range r.Trace.TopOps(*top) {
		fmt.Printf("  %-18s %-10s %-14s %12v  %8.2f MFLOP  %8.2f MiB\n",
			ev.Name, ev.Phase, ev.Category, ev.Dur,
			float64(ev.FLOPs)/1e6, float64(ev.Bytes)/(1<<20))
	}

	fmt.Println("\ndevice projections:")
	for _, p := range r.Projections {
		fmt.Printf("  %-16s %14v  symbolic %5.1f%%  energy %8.2f J\n",
			p.Device.Name, p.Total, 100*p.PhaseShare(trace.Symbolic), p.EnergyJ)
	}

	if *jsonOut != "" {
		if err := writeTo(*jsonOut, r.Trace.WriteJSON); err != nil {
			fatal(err)
		}
		fmt.Fprintln(os.Stderr, "trace JSON written to", *jsonOut)
	}
	if *reportOut != "" {
		if err := writeTo(*reportOut, r.WriteJSON); err != nil {
			fatal(err)
		}
		fmt.Fprintln(os.Stderr, "report JSON written to", *reportOut)
	}
	if *chromeOut != "" {
		if err := writeTo(*chromeOut, r.Trace.WriteChromeTrace); err != nil {
			fatal(err)
		}
		fmt.Fprintln(os.Stderr, "chrome trace written to", *chromeOut)
	}
}

// dumpMetrics writes the registry's Prometheus exposition to path ("-"
// selects stderr, keeping stdout clean for the report).
func dumpMetrics(reg *metrics.Registry, path string) error {
	if path == "-" {
		return reg.WriteProm(os.Stderr)
	}
	return writeTo(path, reg.WriteProm)
}

// writeTo streams an export function into a freshly created file.
func writeTo(path string, f func(io.Writer) error) error {
	fd, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := f(fd); err != nil {
		fd.Close()
		return err
	}
	return fd.Close()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "nsprof:", err)
	os.Exit(1)
}
