// Command ravengen generates Raven's Progressive Matrices tasks as JSON for
// inspection or replay by external tools.
//
// Usage:
//
//	ravengen -n 3 -m 3 -seed 7 > tasks.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"github.com/neurosym/nsbench/internal/raven"
	"github.com/neurosym/nsbench/internal/tensor"
)

// jsonPanel is the serialized panel form.
type jsonPanel struct {
	Slots  []int `json:"slots"`
	Number int   `json:"number"`
	Type   int   `json:"type"`
	Size   int   `json:"size"`
	Color  int   `json:"color"`
}

// jsonTask is the serialized task form.
type jsonTask struct {
	M         int         `json:"m"`
	Rules     []string    `json:"rules"`
	Context   []jsonPanel `json:"context"`
	Choices   []jsonPanel `json:"choices"`
	AnswerIdx int         `json:"answer_idx"`
}

func toJSONPanel(p raven.Panel) jsonPanel {
	jp := jsonPanel{Number: p.NumberOf(), Type: p.Type, Size: p.Size, Color: p.Color}
	for i, s := range p.Slots {
		if s {
			jp.Slots = append(jp.Slots, i)
		}
	}
	return jp
}

func main() {
	n := flag.Int("n", 1, "number of tasks to generate")
	m := flag.Int("m", 3, "matrix dimension (2 or 3)")
	seed := flag.Int64("seed", 1, "generator seed")
	flag.Parse()

	g := tensor.NewRNG(*seed)
	var tasks []jsonTask
	for i := 0; i < *n; i++ {
		t := raven.Generate(raven.Config{M: *m}, g)
		if err := t.Validate(); err != nil {
			fmt.Fprintln(os.Stderr, "ravengen: generated invalid task:", err)
			os.Exit(1)
		}
		jt := jsonTask{M: t.M, AnswerIdx: t.AnswerIdx}
		for _, r := range t.Rules {
			jt.Rules = append(jt.Rules, r.String())
		}
		for _, p := range t.Context {
			jt.Context = append(jt.Context, toJSONPanel(p))
		}
		for _, p := range t.Choices {
			jt.Choices = append(jt.Choices, toJSONPanel(p))
		}
		tasks = append(tasks, jt)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(tasks); err != nil {
		fmt.Fprintln(os.Stderr, "ravengen:", err)
		os.Exit(1)
	}
}
