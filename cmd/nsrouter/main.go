// Command nsrouter fronts a fleet of nsserve replicas: it shards
// characterization requests across them by the same canonical
// workload/device key the replicas cache under (so each key has exactly
// one owning replica and the cluster cache scales linearly), health-checks
// every replica's /readyz, ejects failing nodes from the hash ring, fails
// requests over to the next ring node with jittered exponential backoff,
// and optionally hedges slow requests onto a second replica.
//
// Replicas can be pinned at startup (-replicas) or, with -join (the
// default), announce themselves at runtime: each nsserve started with
// -announce posts /v1/cluster/join and heartbeats it, enters the ring
// after passing readiness probation, and is withdrawn on drain (or when
// heartbeats stop for -member-ttl). With -replication N, each cache key
// is kept warm on N ring owners and reads go to the least-loaded one.
//
// Usage:
//
//	nsrouter -addr :9090 -replicas http://host-a:8080,http://host-b:8080
//	nsrouter -addr :9090 -replication 2      # replicas join at runtime
//
//	curl -X POST localhost:9090/v1/characterize -d '{"workload":"NVSA"}'
//	curl localhost:9090/v1/stats            # aggregated across live replicas
//	curl localhost:9090/v1/cluster/members  # membership table + departures
//	curl localhost:9090/metrics             # router's own Prometheus registry
//	curl localhost:9090/readyz              # 503 once every replica is ejected
//
// The API mirrors nsserve, so clients point at the router unchanged.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/neurosym/nsbench/internal/cluster"
	"github.com/neurosym/nsbench/internal/logging"
	"github.com/neurosym/nsbench/internal/membership"
)

func main() {
	addr := flag.String("addr", ":9090", "listen address")
	replicas := flag.String("replicas", "", "comma-separated nsserve base URLs (optional with -join)")
	join := flag.Bool("join", true, "accept runtime replica joins on POST /v1/cluster/join")
	memberTTL := flag.Duration("member-ttl", 0, "drop a joined replica after this long without a heartbeat (0 = default 15s)")
	replication := flag.Int("replication", 1, "cache owners per key: misses fan-fill to N ring owners, reads pick the least-loaded")
	vnodes := flag.Int("vnodes", 0, "virtual nodes per replica on the hash ring (0 = default 128)")
	maxAttempts := flag.Int("max-attempts", 0, "distinct replicas one request may try (0 = default 3)")
	hedge := flag.Bool("hedge", false, "hedge slow requests onto a second replica")
	hedgeQuantile := flag.Float64("hedge-quantile", 0, "attempt-latency quantile that arms the hedge timer (0 = default 0.9)")
	probeInterval := flag.Duration("probe-interval", 0, "health-probe period (0 = default 2s)")
	probeTimeout := flag.Duration("probe-timeout", 0, "per-probe timeout (0 = default 1s)")
	ejectAfter := flag.Int("eject-after", 0, "consecutive failures before ejection (0 = default 3)")
	readmitAfter := flag.Int("readmit-after", 0, "consecutive probation successes before readmission (0 = default 2)")
	upstreamTimeout := flag.Duration("timeout", 0, "per-attempt upstream timeout (0 = default 90s)")
	nodeName := flag.String("node-name", "", "router identity in stitched traces (default nsrouter-<hostname>-<pid>)")
	quiet := flag.Bool("quiet", false, "disable per-request logging")
	logFormat := flag.String("log-format", logging.FormatText, "log output format: text or json")
	flag.Parse()

	if *replicas == "" && !*join {
		fatal(fmt.Errorf("-replicas is required when -join=false (comma-separated nsserve URLs)"))
	}
	var urls []string
	for _, u := range strings.Split(*replicas, ",") {
		if u = strings.TrimSpace(u); u != "" {
			urls = append(urls, u)
		}
	}

	logger, err := logging.Setup(os.Stderr, *logFormat, *quiet)
	if err != nil {
		fatal(err)
	}
	rt, err := cluster.New(cluster.Config{
		Replicas:        urls,
		Membership:      membership.Config{Enabled: *join, TTL: *memberTTL},
		Replication:     *replication,
		VNodes:          *vnodes,
		MaxAttempts:     *maxAttempts,
		Hedge:           *hedge,
		HedgeQuantile:   *hedgeQuantile,
		UpstreamTimeout: *upstreamTimeout,
		Health: cluster.HealthConfig{
			Interval:     *probeInterval,
			Timeout:      *probeTimeout,
			EjectAfter:   *ejectAfter,
			ReadmitAfter: *readmitAfter,
		},
		Logger:   logger,
		NodeName: *nodeName,
	})
	if err != nil {
		fatal(err)
	}

	hs := &http.Server{Addr: *addr, Handler: rt.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "nsrouter: listening on %s, fronting %d static replicas (dynamic join %v)\n",
		*addr, len(urls), *join)

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	select {
	case <-ctx.Done():
		fmt.Fprintln(os.Stderr, "nsrouter: shutting down...")
		dctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := hs.Shutdown(dctx); err != nil {
			fmt.Fprintln(os.Stderr, "nsrouter: drain incomplete:", err)
		}
		rt.Close()
	case err := <-errc:
		rt.Close()
		if err != http.ErrServerClosed {
			fatal(err)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "nsrouter:", err)
	os.Exit(1)
}
