// Command nsrouter fronts a fleet of nsserve replicas: it shards
// characterization requests across them by the same canonical
// workload/device key the replicas cache under (so each key has exactly
// one owning replica and the cluster cache scales linearly), health-checks
// every replica's /readyz, ejects failing nodes from the hash ring, fails
// requests over to the next ring node with jittered exponential backoff,
// and optionally hedges slow requests onto a second replica.
//
// Usage:
//
//	nsrouter -addr :9090 -replicas http://host-a:8080,http://host-b:8080
//
//	curl -X POST localhost:9090/v1/characterize -d '{"workload":"NVSA"}'
//	curl localhost:9090/v1/stats   # aggregated across live replicas
//	curl localhost:9090/metrics    # router's own Prometheus registry
//	curl localhost:9090/readyz     # 503 once every replica is ejected
//
// The API mirrors nsserve, so clients point at the router unchanged.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/neurosym/nsbench/internal/cluster"
	"github.com/neurosym/nsbench/internal/logging"
)

func main() {
	addr := flag.String("addr", ":9090", "listen address")
	replicas := flag.String("replicas", "", "comma-separated nsserve base URLs (required)")
	vnodes := flag.Int("vnodes", 0, "virtual nodes per replica on the hash ring (0 = default 128)")
	maxAttempts := flag.Int("max-attempts", 0, "distinct replicas one request may try (0 = min(3, #replicas))")
	hedge := flag.Bool("hedge", false, "hedge slow requests onto a second replica")
	hedgeQuantile := flag.Float64("hedge-quantile", 0, "attempt-latency quantile that arms the hedge timer (0 = default 0.9)")
	probeInterval := flag.Duration("probe-interval", 0, "health-probe period (0 = default 2s)")
	probeTimeout := flag.Duration("probe-timeout", 0, "per-probe timeout (0 = default 1s)")
	ejectAfter := flag.Int("eject-after", 0, "consecutive failures before ejection (0 = default 3)")
	readmitAfter := flag.Int("readmit-after", 0, "consecutive probation successes before readmission (0 = default 2)")
	upstreamTimeout := flag.Duration("timeout", 0, "per-attempt upstream timeout (0 = default 90s)")
	nodeName := flag.String("node-name", "", "router identity in stitched traces (default nsrouter-<hostname>-<pid>)")
	quiet := flag.Bool("quiet", false, "disable per-request logging")
	logFormat := flag.String("log-format", logging.FormatText, "log output format: text or json")
	flag.Parse()

	if *replicas == "" {
		fatal(fmt.Errorf("-replicas is required (comma-separated nsserve URLs)"))
	}
	var urls []string
	for _, u := range strings.Split(*replicas, ",") {
		if u = strings.TrimSpace(u); u != "" {
			urls = append(urls, u)
		}
	}

	logger, err := logging.Setup(os.Stderr, *logFormat, *quiet)
	if err != nil {
		fatal(err)
	}
	rt, err := cluster.New(cluster.Config{
		Replicas:        urls,
		VNodes:          *vnodes,
		MaxAttempts:     *maxAttempts,
		Hedge:           *hedge,
		HedgeQuantile:   *hedgeQuantile,
		UpstreamTimeout: *upstreamTimeout,
		Health: cluster.HealthConfig{
			Interval:     *probeInterval,
			Timeout:      *probeTimeout,
			EjectAfter:   *ejectAfter,
			ReadmitAfter: *readmitAfter,
		},
		Logger:   logger,
		NodeName: *nodeName,
	})
	if err != nil {
		fatal(err)
	}

	hs := &http.Server{Addr: *addr, Handler: rt.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "nsrouter: listening on %s, fronting %d replicas\n", *addr, len(urls))

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	select {
	case <-ctx.Done():
		fmt.Fprintln(os.Stderr, "nsrouter: shutting down...")
		dctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := hs.Shutdown(dctx); err != nil {
			fmt.Fprintln(os.Stderr, "nsrouter: drain incomplete:", err)
		}
		rt.Close()
	case err := <-errc:
		rt.Close()
		if err != http.ErrServerClosed {
			fatal(err)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "nsrouter:", err)
	os.Exit(1)
}
