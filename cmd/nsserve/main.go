// Command nsserve runs the characterization service: an HTTP/JSON server
// that executes neuro-symbolic workload characterizations on a shared
// backend worker pool, caches the deterministic reports, deduplicates
// concurrent identical requests, and sheds load with 429s when its
// admission queue fills. Cache-missing requests for the same workload
// arriving within -batch-window (2ms by default) coalesce into one
// batched engine pass with per-item reports — see the "Batching" section
// of the README.
//
// Usage:
//
//	nsserve -addr :8080 -backend parallel -workers 4
//	nsserve -batch-window 5ms -batch-max 16   # wider request coalescing
//	nsserve -batch-window 0                   # disable coalescing
//
//	curl localhost:8080/v1/workloads
//	curl -X POST localhost:8080/v1/characterize -d '{"workload":"NVSA"}'
//	curl -N -X POST localhost:8080/v1/explore \
//	  -d '{"workload":"NVSA","space":{"mem_bw_gbs":{"min":60,"max":1200,"steps":8,"log":true}}}'
//	curl localhost:8080/v1/stats
//	curl localhost:8080/metrics    # Prometheus text exposition
//	curl localhost:8080/healthz    # liveness probe (process up)
//	curl localhost:8080/readyz     # readiness probe (503 while draining)
//	curl -o t.json 'localhost:8080/v1/trace?workload=NVSA'  # Perfetto timeline
//	curl localhost:8080/debug/trace                         # flight recorder
//
// /metrics exposes the full observability surface: per-endpoint request
// counters and latency histograms, cache hit/miss/eviction counters,
// queue-depth/in-flight/pool gauges, per-operator timing histograms, and
// Go runtime samples.
//
// SIGINT/SIGTERM shut the server down gracefully: /readyz flips to 503
// first and the listener keeps answering for -drain-grace so routing
// tiers (nsrouter) eject the replica before connections start failing;
// then the listener stops accepting, in-flight characterizations drain,
// and the backend worker pool is torn down.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/neurosym/nsbench/internal/logging"
	"github.com/neurosym/nsbench/internal/membership"
	"github.com/neurosym/nsbench/internal/ops"
	"github.com/neurosym/nsbench/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	backendName := flag.String("backend", ops.BackendParallel, "execution backend: serial or parallel")
	workers := flag.Int("workers", 0, "parallel backend worker count (0 = GOMAXPROCS)")
	cacheSize := flag.Int("cache", 0, "report cache capacity (0 = default 128, negative disables)")
	queueDepth := flag.Int("queue", 0, "admission queue depth (0 = default 64)")
	concurrency := flag.Int("concurrency", 0, "concurrent characterization workers (0 = default 2)")
	timeout := flag.Duration("timeout", 0, "per-request timeout incl. queueing (0 = default 60s)")
	drain := flag.Duration("drain", 30*time.Second, "graceful-shutdown drain budget")
	drainGrace := flag.Duration("drain-grace", 0, "time to answer 503 on /readyz before the listener closes (lets routers eject this replica first)")
	recorderSize := flag.Int("flight-recorder", 0, "flight-recorder capacity in events (0 = default 512, negative disables)")
	enablePprof := flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
	batchWindow := flag.Duration("batch-window", 2*time.Millisecond, "request-coalescing window: cache-missing requests for the same workload arriving within it run as one batched engine pass (0 disables)")
	batchMax := flag.Int("batch-max", 0, "max requests coalesced into one batch (0 = default 8)")
	exploreMaxPoints := flag.Int("explore-max-points", 0, "max grid points per /v1/explore sweep (0 = default 65536)")
	exploreConcurrency := flag.Int("explore-concurrency", 0, "concurrent /v1/explore sweeps before 429 (0 = default 2)")
	nodeName := flag.String("node-name", "", "replica identity in stitched traces (default <hostname>-<pid>)")
	announce := flag.String("announce", "", "nsrouter base URL to join on startup and heartbeat (empty = no announcement)")
	advertise := flag.String("advertise", "", "base URL this replica is reachable at (default http://127.0.0.1<-addr> when -addr is :port)")
	announceInterval := flag.Duration("announce-interval", 0, "heartbeat period to -announce (0 = default 5s; keep at or below a third of the router's -member-ttl)")
	quiet := flag.Bool("quiet", false, "disable per-request logging")
	logFormat := flag.String("log-format", logging.FormatText, "log output format: text or json")
	flag.Parse()

	logger, err := logging.Setup(os.Stderr, *logFormat, *quiet)
	if err != nil {
		fatal(err)
	}
	srv, err := serve.New(serve.Config{
		Engine:             ops.Config{Backend: *backendName, Workers: *workers},
		CacheSize:          *cacheSize,
		QueueDepth:         *queueDepth,
		Concurrency:        *concurrency,
		RequestTimeout:     *timeout,
		RecorderSize:       *recorderSize,
		Logger:             logger,
		Pprof:              *enablePprof,
		BatchWindow:        *batchWindow,
		BatchMax:           *batchMax,
		ExploreMaxPoints:   *exploreMaxPoints,
		ExploreConcurrency: *exploreConcurrency,
		NodeName:           *nodeName,
	})
	if err != nil {
		fatal(err)
	}

	hs := &http.Server{Addr: *addr, Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "nsserve: listening on %s (backend %s)\n", *addr, *backendName)

	// Dynamic membership: join the router's cluster and keep heartbeating
	// until drain, when one explicit leave withdraws this replica from the
	// ring faster than the router's TTL or health ejection would.
	var announcer *membership.Announcer
	if *announce != "" {
		self := *advertise
		if self == "" {
			if !strings.HasPrefix(*addr, ":") {
				fatal(fmt.Errorf("-announce needs -advertise when -addr (%q) is not a bare :port", *addr))
			}
			self = "http://127.0.0.1" + *addr
		}
		announcer, err = membership.NewAnnouncer(membership.AnnouncerConfig{
			Router:   *announce,
			Self:     self,
			Interval: *announceInterval,
			Logger:   logger,
		})
		if err != nil {
			fatal(err)
		}
		announcer.Start()
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	select {
	case <-ctx.Done():
		fmt.Fprintln(os.Stderr, "nsserve: shutting down, draining in-flight work...")
		if announcer != nil {
			// Leave the cluster before readiness flips: the router stops
			// routing new keys here while the drain grace still answers
			// the requests already in flight.
			announcer.Close()
		}
		srv.BeginDrain()
		if *drainGrace > 0 {
			// Keep serving (with /readyz answering 503) long enough for
			// upstream health checkers to route around this replica.
			time.Sleep(*drainGrace)
		}
		dctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := hs.Shutdown(dctx); err != nil {
			fmt.Fprintln(os.Stderr, "nsserve: drain incomplete:", err)
		}
		srv.Close()
	case err := <-errc:
		srv.Close()
		if err != http.ErrServerClosed {
			fatal(err)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "nsserve:", err)
	os.Exit(1)
}
