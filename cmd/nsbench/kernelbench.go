package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"github.com/neurosym/nsbench/internal/hwsim"
	"github.com/neurosym/nsbench/internal/tensor"
)

// The kernel benchmark mode (-kernel-bench): time the naive and tiled
// GEMM/conv kernels over the workload suite's real operator shapes, place
// the achieved FLOP/s of each against the modeled devices' rooflines, and
// write the table as JSON (the checked-in BENCH_kernels.json). This is the
// measurement behind the dispatch-table thresholds in
// internal/tensor/dispatch.go and the CI kernel smoke job's assertions.

// kernelBenchRow is one (shape, kernel) measurement.
type kernelBenchRow struct {
	Name           string  `json:"name"`
	Op             string  `json:"op"`     // "gemm" or "conv2d"
	Kernel         string  `json:"kernel"` // "naive" or "tiled"
	AutoPick       string  `json:"auto_pick"`
	Reps           int     `json:"reps"`
	NsPerOp        int64   `json:"ns_per_op"`
	FLOPs          int64   `json:"flops"`
	AlgBytes       int64   `json:"alg_bytes"`
	AI             float64 `json:"ai_flops_per_byte"`
	AchievedGFLOPs float64 `json:"achieved_gflops"`

	// Roofline placement per modeled device: ceiling at this shape's AI
	// and achieved/ceiling percentage.
	Roofline map[string]kernelRoofline `json:"roofline"`
}

// kernelRoofline places one measurement on one device model.
type kernelRoofline struct {
	CeilingGFLOPs float64 `json:"ceiling_gflops"`
	Pct           float64 `json:"pct_of_ceiling"`
}

// kernelBenchFile is the BENCH_kernels.json document.
type kernelBenchFile struct {
	Description string                 `json:"description"`
	Generated   string                 `json:"generated"`
	Go          string                 `json:"go"`
	GOOS        string                 `json:"goos"`
	GOARCH      string                 `json:"goarch"`
	CPU         string                 `json:"cpu"`
	Benchmarks  []kernelBenchRow       `json:"benchmarks"`
	Derived     map[string]interface{} `json:"derived"`
}

// benchTarget keeps each (shape, kernel) measurement above this much wall
// time so one-shot scheduling noise cannot flip a speedup assertion.
const benchTarget = 80 * time.Millisecond

// benchReps repetitions are taken per measurement; the minimum ns/op wins
// (standard practice: the minimum is the run least disturbed by the OS).
const benchReps = 3

// benchKernel times fn (one op execution) and returns min ns/op over
// benchReps repetitions of an iteration count filling benchTarget.
func benchKernel(fn func()) (nsPerOp int64, reps int) {
	fn() // warm caches and the scratch pool
	start := time.Now()
	fn()
	once := time.Since(start)
	iters := 1
	if once > 0 && once < benchTarget {
		iters = int(benchTarget/once) + 1
	}
	best := int64(1<<63 - 1)
	for r := 0; r < benchReps; r++ {
		start := time.Now()
		for i := 0; i < iters; i++ {
			fn()
		}
		per := time.Since(start).Nanoseconds() / int64(iters)
		if per < best {
			best = per
		}
	}
	return best, iters * benchReps
}

// kernelBenchShapes: the suite's real GEMM shapes (NVSA linear head,
// NVSA codebook encode) plus reference square sizes.
var kernelGemmShapes = []struct {
	name    string
	m, k, n int
}{
	{"gemm-256x256x256", 256, 256, 256},
	{"gemm-512x512x512", 512, 512, 512},
	{"gemm-nvsa-head-16x16x4096", 16, 16, 4096},
	{"gemm-nvsa-codebook-1x8x4096", 1, 8, 4096},
}

// kernelConvShapes: the suite's real conv shapes (NVSA CNN frontend,
// VSAIT translator layers), all 3×3 stride-1 pad-1 at 32×32.
var kernelConvShapes = []struct {
	name             string
	n, cin, cout, hw int
}{
	{"conv-nvsa-l1-1x1x8x32", 1, 1, 8, 32},
	{"conv-nvsa-l2-1x8x16x32", 1, 8, 16, 32},
	{"conv-vsait-enc-1x3x16x32", 1, 3, 16, 32},
	{"conv-vsait-mid-1x16x16x32", 1, 16, 16, 32},
}

// runKernelBench measures every shape under both kernels, prints the
// comparison table, and writes the JSON document to path.
func runKernelBench(path string) error {
	devices := hwsim.AllDevices()
	var rows []kernelBenchRow
	derived := map[string]interface{}{}

	bench := func(name, op, autoPick string, flops, bytes int64, run func(tensor.Kernel)) map[string]int64 {
		per := map[string]int64{}
		for _, kern := range []tensor.Kernel{tensor.KernelNaive, tensor.KernelTiled} {
			k := kern
			ns, reps := benchKernel(func() { run(k) })
			per[kern.String()] = ns
			row := kernelBenchRow{
				Name: name, Op: op, Kernel: kern.String(), AutoPick: autoPick,
				Reps: reps, NsPerOp: ns, FLOPs: flops, AlgBytes: bytes,
				Roofline: map[string]kernelRoofline{},
			}
			if bytes > 0 {
				row.AI = float64(flops) / float64(bytes)
			}
			row.AchievedGFLOPs = float64(flops) / float64(ns)
			for _, d := range devices {
				att := d.Roofline().Attainable(row.AI)
				r := kernelRoofline{CeilingGFLOPs: att}
				if att > 0 {
					r.Pct = 100 * row.AchievedGFLOPs / att
				}
				row.Roofline[d.Name] = r
			}
			rows = append(rows, row)
		}
		derived["speedup_"+name] = float64(per["naive"]) / float64(per["tiled"])
		return per
	}

	w := bufio.NewWriter(os.Stdout)
	fmt.Fprintln(w, "Kernel benchmarks — naive vs tiled over the workload suite's operator shapes")
	fmt.Fprintf(w, "%-30s %5s %14s %14s %9s %10s %8s\n",
		"shape", "auto", "naive ns/op", "tiled ns/op", "speedup", "GFLOP/s", "Xeon%")
	for _, s := range kernelGemmShapes {
		g := tensor.NewRNG(1)
		a, b := g.Normal(0, 1, s.m, s.k), g.Normal(0, 1, s.k, s.n)
		flops := tensor.FlopsMatMul(s.m, s.k, s.n)
		bytes := tensor.BytesMatMul(s.m, s.k, s.n)
		auto := tensor.GemmKernelFor(s.m, s.k, s.n).String()
		per := bench(s.name, "gemm", auto, flops, bytes, func(k tensor.Kernel) {
			tensor.MatMulKernelOn(tensor.Serial, k, a, b)
		})
		printKernelRow(w, s.name, auto, per, flops, bytes)
	}
	for _, s := range kernelConvShapes {
		g := tensor.NewRNG(2)
		in := g.Normal(0, 1, s.n, s.cin, s.hw, s.hw)
		wt := g.Normal(0, 1, s.cout, s.cin, 3, 3)
		bias := g.Normal(0, 1, s.cout)
		hout := s.hw // 3×3 stride-1 pad-1 preserves the spatial dims
		flops := tensor.FlopsConv2D(s.n, s.cin, s.cout, hout, hout, 3, 3)
		bytes := tensor.BytesConv2D(s.n, s.cin, s.hw, s.hw, s.cout, hout, hout, 3, 3)
		auto := tensor.ConvKernelFor(hout).String()
		per := bench(s.name, "conv2d", auto, flops, bytes, func(k tensor.Kernel) {
			tensor.Conv2DKernelOn(tensor.Serial, k, in, wt, bias, 1, 1)
		})
		printKernelRow(w, s.name, auto, per, flops, bytes)
	}
	w.Flush()

	doc := kernelBenchFile{
		Description: "Naive-vs-tiled kernel benchmarks with roofline placement against the paper's device models. Regenerate with: go run ./cmd/nsbench -kernel-bench BENCH_kernels.json",
		Generated:   time.Now().Format("2006-01-02"),
		Go:          runtime.Version(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		CPU:         cpuModel(),
		Benchmarks:  rows,
		Derived:     derived,
	}
	if path == "-" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "nsbench: wrote kernel benchmarks to %s\n", path)
	return nil
}

// printKernelRow renders one shape's naive/tiled comparison line. The
// Xeon% column places the tiled kernel's achieved FLOP/s against the
// Xeon Silver 4114 roofline — the only CPU device model, hence the
// natural ceiling for these host-side measurements.
func printKernelRow(w *bufio.Writer, name, auto string, per map[string]int64, flops, bytes int64) {
	tiledG := float64(flops) / float64(per["tiled"])
	ai := 0.0
	if bytes > 0 {
		ai = float64(flops) / float64(bytes)
	}
	att := hwsim.XeonSilver4114.Roofline().Attainable(ai)
	pct := 0.0
	if att > 0 {
		pct = 100 * tiledG / att
	}
	fmt.Fprintf(w, "%-30s %5s %14d %14d %8.2fx %10.2f %7.1f%%\n",
		name, auto, per["naive"], per["tiled"],
		float64(per["naive"])/float64(per["tiled"]), tiledG, pct)
}

// cpuModel reads the host CPU model string (best effort, linux).
func cpuModel() string {
	b, err := os.ReadFile("/proc/cpuinfo")
	if err != nil {
		return ""
	}
	for _, line := range strings.Split(string(b), "\n") {
		if strings.HasPrefix(line, "model name") {
			if _, after, ok := strings.Cut(line, ":"); ok {
				return strings.TrimSpace(after)
			}
		}
	}
	return ""
}
