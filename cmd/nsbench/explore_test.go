package main

import (
	"encoding/json"
	"os"
	"testing"

	"github.com/neurosym/nsbench/internal/dse"
	"github.com/neurosym/nsbench/internal/hwsim"
	"github.com/neurosym/nsbench/internal/ops"
)

// TestRunExploreArtifact runs the -explore smoke end to end on the
// cheapest real workload and checks the artifact: full 256-point coverage,
// zero failures, a non-empty front, and a re-projection speedup over the
// acceptance floor of 50x.
func TestRunExploreArtifact(t *testing.T) {
	path := t.TempDir() + "/BENCH_explore.json"
	if err := runExplore(path, "LNN", hwsim.RTX2080Ti, ops.Config{}); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var art dse.Artifact
	if err := json.Unmarshal(b, &art); err != nil {
		t.Fatal(err)
	}
	if art.Workload != "LNN" || art.GridSize != 256 {
		t.Fatalf("artifact header wrong: %+v", art)
	}
	if art.Evaluated != 256 || art.Failed != 0 {
		t.Fatalf("evaluated %d failed %d, want 256/0", art.Evaluated, art.Failed)
	}
	if art.FrontSize == 0 || len(art.Front) != art.FrontSize {
		t.Fatalf("front missing: size %d, len %d", art.FrontSize, len(art.Front))
	}
	if art.CharacterizeNs <= 0 || art.PointsPerSec <= 0 {
		t.Fatalf("timings missing: %+v", art)
	}
	if art.ReprojectionSpeedup < 50 {
		t.Fatalf("re-projection speedup %.1fx below the 50x floor", art.ReprojectionSpeedup)
	}
}
