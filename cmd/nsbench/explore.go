package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"time"

	"github.com/neurosym/nsbench/internal/core"
	"github.com/neurosym/nsbench/internal/dse"
	"github.com/neurosym/nsbench/internal/hwsim"
	"github.com/neurosym/nsbench/internal/ops"
)

// runExplore is the in-process design-space smoke: characterize the
// workload once, sweep the default 256-point space over the cached trace,
// and write the BENCH_explore.json artifact — including the measured
// trace-once/project-many advantage over re-characterizing per point
// (ReprojectionSpeedup), the number the acceptance criteria pin at >= 50x.
func runExplore(path, workload string, dev hwsim.Device, eng ops.Config) error {
	pool := eng.NewPool()
	defer pool.Close()

	wl, err := core.BuildWorkload(workload)
	if err != nil {
		return err
	}
	charStart := time.Now()
	report, err := core.Characterize(wl, core.Options{Engine: eng, Pool: pool, Device: dev})
	core.CloseWorkload(wl)
	if err != nil {
		return err
	}
	charDur := time.Since(charStart)

	grid, err := dse.Resolve(dev, dse.DefaultSpace())
	if err != nil {
		return err
	}
	engine := dse.NewEngine(grid, report.Trace)
	sum, err := engine.Sweep(context.Background(), 0, 1, nil)
	if err != nil {
		return err
	}

	art := dse.Artifact{
		Workload:       workload,
		Device:         dev.Name,
		GridSize:       grid.Size(),
		Evaluated:      sum.Evaluated,
		Failed:         sum.Failed,
		ElapsedNs:      sum.ElapsedNs,
		PointsPerSec:   sum.PointsPerSec,
		FrontSize:      sum.FrontSize,
		Front:          sum.Front,
		CharacterizeNs: charDur.Nanoseconds(),
	}
	if s := charDur.Seconds(); s > 0 {
		art.RecharPointsPerSec = 1 / s
	}
	if art.RecharPointsPerSec > 0 {
		art.ReprojectionSpeedup = art.PointsPerSec / art.RecharPointsPerSec
	}

	b, err := json.MarshalIndent(art, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(b, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("Design-space exploration — %s on a space over %s\n", workload, dev.Name)
	fmt.Printf("%-24s %d points (%d failed)\n", "grid", art.Evaluated, art.Failed)
	fmt.Printf("%-24s %v\n", "characterize (once)", charDur.Round(time.Microsecond))
	fmt.Printf("%-24s %v (%.0f points/s)\n", "sweep",
		time.Duration(art.ElapsedNs).Round(time.Microsecond), art.PointsPerSec)
	fmt.Printf("%-24s %.0fx\n", "re-projection speedup", art.ReprojectionSpeedup)
	fmt.Printf("%-24s %d points on the latency x cost front\n", "pareto", art.FrontSize)
	fmt.Fprintf(os.Stderr, "nsbench: wrote %s\n", path)
	return nil
}
