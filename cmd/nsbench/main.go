// Command nsbench regenerates the tables and figures of "Towards Cognitive
// AI Systems: Workload and Characterization of Neuro-Symbolic AI"
// (ISPASS 2024) from the nsbench reimplementation.
//
// Usage:
//
//	nsbench -experiment all
//	nsbench -experiment fig2a|fig2b|fig2c|fig3a|fig3b|fig3c|fig4|fig5|tab1|tab4|sweep
//	nsbench -batch 8    # continuous-batching comparison: 1 batched pass of 8 vs 8 solo runs
//	nsbench -kernel-bench BENCH_kernels.json   # naive-vs-tiled kernel rooflines
//	nsbench -explore BENCH_explore.json        # design-space sweep over the cached NVSA trace
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/neurosym/nsbench/internal/core"
	"github.com/neurosym/nsbench/internal/hwsim"
	"github.com/neurosym/nsbench/internal/logging"
	"github.com/neurosym/nsbench/internal/metrics"
	"github.com/neurosym/nsbench/internal/ops"
	"github.com/neurosym/nsbench/internal/trace"
)

func main() {
	experiment := flag.String("experiment", "all", "which experiment to regenerate (fig2a, fig2b, fig2c, fig3a, fig3b, fig3c, fig4, fig5, tab1, tab4, sweep, recs, all)")
	device := flag.String("device", hwsim.RTX2080Ti.Name, "reference device for roofline and Table IV")
	backendName := flag.String("backend", ops.BackendSerial, "execution backend: serial or parallel")
	workers := flag.Int("workers", 0, "parallel backend worker count (0 = GOMAXPROCS)")
	metricsOut := flag.String("metrics", "", "dump runtime/pool/operator metrics (Prometheus text) to this file at exit (\"-\" = stderr)")
	chromeTrace := flag.String("chrome-trace", "", "write the suite's merged operator timeline (Chrome trace-event JSON, loadable in Perfetto) to this file; needs a suite experiment (fig2a/fig3*/fig4/all)")
	batch := flag.Int("batch", 0, "run the continuous-batching comparison instead of -experiment: one batched pass of N items vs N sequential solo runs, per workload (N >= 2)")
	kernelName := flag.String("kernel", "auto", "GEMM/conv kernel implementation: auto (measured dispatch table), naive, or tiled")
	kernelBench := flag.String("kernel-bench", "", "benchmark naive vs tiled kernels over the workload operator shapes and write the roofline table (BENCH_kernels.json format) to this file instead of running -experiment")
	explore := flag.String("explore", "", "run the design-space exploration smoke instead of -experiment: characterize -explore-workload once, sweep the default 256-point config space over the cached trace, and write the BENCH_explore.json artifact to this file")
	exploreWorkload := flag.String("explore-workload", "NVSA", "workload the -explore sweep characterizes and projects")
	logFormat := flag.String("log-format", logging.FormatText, "log output format: text or json")
	flag.Parse()

	if _, err := logging.Setup(os.Stderr, *logFormat, false); err != nil {
		fatal(err)
	}
	if *kernelBench != "" {
		if err := runKernelBench(*kernelBench); err != nil {
			fatal(err)
		}
		return
	}
	dev, err := hwsim.DeviceByName(*device)
	if err != nil {
		fatal(err)
	}
	eng := ops.Config{Backend: *backendName, Workers: *workers, Kernel: *kernelName}
	if err := eng.Validate(); err != nil {
		fatal(err)
	}
	if *explore != "" {
		if err := runExplore(*explore, *exploreWorkload, dev, eng); err != nil {
			fatal(err)
		}
		return
	}
	if *batch != 0 {
		if *batch < 2 {
			fatal(fmt.Errorf("-batch needs N >= 2, got %d", *batch))
		}
		if err := runBatchCompare(*batch, dev, eng); err != nil {
			fatal(err)
		}
		return
	}
	var reg *metrics.Registry
	if *metricsOut != "" {
		reg = metrics.NewRegistry()
		metrics.NewGoCollector(reg)
		metrics.RegisterBuildInfo(reg)
	}
	if err := run(*experiment, dev, eng, reg, *chromeTrace); err != nil {
		fatal(err)
	}
	if reg != nil {
		if err := dumpMetrics(reg, *metricsOut); err != nil {
			fatal(err)
		}
	}
}

// dumpMetrics writes the registry's Prometheus exposition to path ("-"
// selects stderr, keeping stdout clean for the experiment tables).
func dumpMetrics(reg *metrics.Registry, path string) error {
	if path == "-" {
		return reg.WriteProm(os.Stderr)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := reg.WriteProm(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "nsbench:", err)
	os.Exit(1)
}

// runBatchCompare times, per registered workload, n sequential solo
// characterizations against one batched pass of n items and prints the
// wall-clock speedup. Workloads with a native RunBatch amortize their
// shared work across the batch; the rest go through the loop-per-item
// adapter, whose speedup is ~1x — the table shows which is which.
func runBatchCompare(n int, dev hwsim.Device, eng ops.Config) error {
	pool := eng.NewPool()
	defer pool.Close()
	opts := core.Options{Engine: eng, Pool: pool, Device: dev}
	fmt.Printf("Continuous batching — one batched pass of n=%d vs n sequential solo runs\n", n)
	fmt.Printf("%-16s %14s %14s %9s\n", "model", "sequential", "batched", "speedup")
	for _, name := range core.WorkloadNames() {
		seqStart := time.Now()
		for i := 0; i < n; i++ {
			wl, err := core.BuildWorkload(name)
			if err != nil {
				return err
			}
			_, rerr := core.Characterize(wl, opts)
			core.CloseWorkload(wl)
			if rerr != nil {
				return rerr
			}
		}
		seq := time.Since(seqStart)
		bw, err := core.BuildBatchWorkload(name)
		if err != nil {
			return err
		}
		batStart := time.Now()
		_, rerr := core.CharacterizeBatch(bw, n, opts)
		core.CloseWorkload(bw)
		if rerr != nil {
			return rerr
		}
		bat := time.Since(batStart)
		fmt.Printf("%-16s %14v %14v %8.2fx\n", name, seq.Round(time.Millisecond), bat.Round(time.Millisecond), float64(seq)/float64(bat))
	}
	return nil
}

// writeChromeTrace merges the suite reports' traces into one timeline and
// writes it as Chrome trace-event JSON. Each workload's events keep their
// wall-clock timestamps, so the merged view shows the suite end to end.
func writeChromeTrace(path string, reports []*core.Report) error {
	combined := trace.New()
	parts := make([]*trace.Trace, 0, len(reports))
	for _, r := range reports {
		if r != nil && r.Trace != nil {
			parts = append(parts, r.Trace)
		}
	}
	combined.Merge(parts...)
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := combined.WriteChromeTrace(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "nsbench: wrote chrome trace to %s (open in https://ui.perfetto.dev)\n", path)
	return nil
}

// run dispatches one experiment (or all of them). All characterization
// runs borrow engines from one shared backend pool, torn down on return;
// a non-nil reg observes the pool and every operator executed on it. A
// non-empty chromeTrace writes the suite's merged timeline there.
func run(experiment string, dev hwsim.Device, eng ops.Config, reg *metrics.Registry, chromeTrace string) error {
	needSuite := map[string]bool{"fig2a": true, "fig3a": true, "fig3b": true, "fig3c": true, "fig4": true, "all": true}
	if chromeTrace != "" && !needSuite[experiment] {
		return fmt.Errorf("-chrome-trace needs a suite experiment (fig2a, fig3a, fig3b, fig3c, fig4, all), not %q", experiment)
	}
	pool := eng.NewPool()
	defer pool.Close()
	if reg != nil {
		ops.RegisterPoolMetrics(reg, pool)
		pool.SetObserver(ops.NewOpObserver(reg))
	}
	opts := core.Options{Engine: eng, Pool: pool}

	var reports []*core.Report
	if needSuite[experiment] {
		fmt.Fprintln(os.Stderr, "running the seven-workload suite (NVSA and friends take a few hundred ms each)...")
		var err error
		reports, err = core.Fig2a(opts)
		if err != nil {
			return err
		}
		if chromeTrace != "" {
			if err := writeChromeTrace(chromeTrace, reports); err != nil {
				return err
			}
		}
	}

	section := func(f func() error) error {
		if err := f(); err != nil {
			return err
		}
		fmt.Println()
		return nil
	}

	all := experiment == "all"
	out := os.Stdout
	if all || experiment == "tab1" {
		if err := section(func() error { core.RenderTab1(out); return nil }); err != nil {
			return err
		}
	}
	if all || experiment == "fig2a" {
		if err := section(func() error { core.RenderFig2a(out, reports); return nil }); err != nil {
			return err
		}
	}
	if all || experiment == "fig2b" {
		if err := section(func() error {
			rows, err := core.Fig2b(opts)
			if err != nil {
				return err
			}
			core.RenderFig2b(out, rows)
			return nil
		}); err != nil {
			return err
		}
	}
	if all || experiment == "fig2c" {
		if err := section(func() error {
			rows, err := core.Fig2c(opts)
			if err != nil {
				return err
			}
			core.RenderFig2c(out, rows)
			return nil
		}); err != nil {
			return err
		}
	}
	if all || experiment == "fig3a" {
		if err := section(func() error { core.RenderFig3a(out, reports); return nil }); err != nil {
			return err
		}
	}
	if all || experiment == "fig3b" {
		if err := section(func() error { core.RenderFig3b(out, reports); return nil }); err != nil {
			return err
		}
	}
	if all || experiment == "fig3c" {
		if err := section(func() error { core.RenderFig3c(out, reports, dev); return nil }); err != nil {
			return err
		}
	}
	if all || experiment == "fig4" {
		if err := section(func() error { core.RenderFig4(out, reports); return nil }); err != nil {
			return err
		}
	}
	if all || experiment == "fig5" {
		if err := section(func() error {
			rows, err := core.Fig5(opts)
			if err != nil {
				return err
			}
			core.RenderFig5(out, rows)
			return nil
		}); err != nil {
			return err
		}
	}
	if all || experiment == "tab4" {
		if err := section(func() error {
			rows, err := core.Tab4(dev, opts)
			if err != nil {
				return err
			}
			core.RenderTab4(out, rows, dev)
			return nil
		}); err != nil {
			return err
		}
	}
	if all || experiment == "recs" {
		if err := section(func() error {
			rec, err := core.RecommendationAblations([]int{1, 2, 4, 8, 16}, opts)
			if err != nil {
				return err
			}
			core.RenderRecommendations(out, rec)
			return nil
		}); err != nil {
			return err
		}
	}
	if all || experiment == "sweep" {
		if err := section(func() error {
			rows, err := core.ScalabilitySweep([]int{1024, 2048, 4096, 8192}, opts)
			if err != nil {
				return err
			}
			fmt.Println("Extended sweep — NVSA hypervector dimension scalability")
			fmt.Printf("%-8s %14s %10s\n", "dim", "total", "symbolic%")
			for _, r := range rows {
				fmt.Printf("%-8d %14v %9.1f%%\n", r.Dim, r.Total, 100*r.SymbolicShare)
			}
			nrows, err := core.NLMScaleSweep([]int{16, 32, 64}, opts)
			if err != nil {
				return err
			}
			fmt.Println("Extended sweep — NLM universe-size scalability")
			fmt.Printf("%-8s %14s %10s\n", "objects", "total", "symbolic%")
			for _, r := range nrows {
				fmt.Printf("%-8d %14v %9.1f%%\n", r.Objects, r.Total, 100*r.SymbolicShare)
			}
			return nil
		}); err != nil {
			return err
		}
	}
	if !all {
		switch experiment {
		case "fig2a", "fig2b", "fig2c", "fig3a", "fig3b", "fig3c", "fig4", "fig5", "tab1", "tab4", "sweep", "recs":
		default:
			return fmt.Errorf("unknown experiment %q", experiment)
		}
	}
	return nil
}
