package main

import (
	"testing"

	"github.com/neurosym/nsbench/internal/hwsim"
	"github.com/neurosym/nsbench/internal/ops"
)

func TestRunSingleExperiments(t *testing.T) {
	// Exercise the cheap experiment paths end-to-end (the heavyweight
	// figure suite is covered by internal/core tests and the benchmarks).
	for _, exp := range []string{"tab1", "fig5", "tab4"} {
		if err := run(exp, hwsim.RTX2080Ti, ops.Config{}); err != nil {
			t.Fatalf("run(%s): %v", exp, err)
		}
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run("fig99", hwsim.RTX2080Ti, ops.Config{}); err == nil {
		t.Fatal("unknown experiment must error")
	}
}
