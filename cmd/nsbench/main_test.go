package main

import (
	"bytes"
	"strings"
	"testing"

	"github.com/neurosym/nsbench/internal/hwsim"
	"github.com/neurosym/nsbench/internal/metrics"
	"github.com/neurosym/nsbench/internal/ops"
)

func TestRunSingleExperiments(t *testing.T) {
	// Exercise the cheap experiment paths end-to-end (the heavyweight
	// figure suite is covered by internal/core tests and the benchmarks).
	for _, exp := range []string{"tab1", "fig5", "tab4"} {
		if err := run(exp, hwsim.RTX2080Ti, ops.Config{}, nil, ""); err != nil {
			t.Fatalf("run(%s): %v", exp, err)
		}
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run("fig99", hwsim.RTX2080Ti, ops.Config{}, nil, ""); err == nil {
		t.Fatal("unknown experiment must error")
	}
}

// TestRunWithMetrics checks the -metrics path: a characterization run on
// an observed pool leaves operator timings in the registry.
func TestRunWithMetrics(t *testing.T) {
	reg := metrics.NewRegistry()
	metrics.NewGoCollector(reg)
	if err := run("tab4", hwsim.RTX2080Ti, ops.Config{}, reg, ""); err != nil {
		t.Fatalf("run(tab4): %v", err)
	}
	var buf bytes.Buffer
	if err := reg.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"ns_op_seconds_count", "ns_backend_workers", "go_goroutines "} {
		if !strings.Contains(out, want) {
			t.Fatalf("metrics dump missing %q:\n%s", want, out)
		}
	}
}

// TestChromeTraceNeedsSuite pins the flag contract: -chrome-trace only
// makes sense for experiments that run the workload suite.
func TestChromeTraceNeedsSuite(t *testing.T) {
	if err := run("tab1", hwsim.RTX2080Ti, ops.Config{}, nil, t.TempDir()+"/t.json"); err == nil {
		t.Fatal("-chrome-trace with a non-suite experiment must error")
	}
}
