// Package nsbench is a Go reproduction of "Towards Cognitive AI Systems:
// Workload and Characterization of Neuro-Symbolic AI" (ISPASS 2024): seven
// neuro-symbolic workloads, the tensor/VSA/fuzzy-logic substrate they run
// on, an operator-level profiler implementing the paper's taxonomy, and
// analytical hardware models that regenerate every figure and table of the
// study. See README.md for the tour and DESIGN.md for the architecture.
//
// The root package is documentation-only; the library lives under
// internal/ and the executables under cmd/.
package nsbench
